"""Failure-scenario helpers.

The paper drives every experiment with a single topology-change event.  This
module names the two event shapes (§4.1) plus the *churn* events real BGP
deployments are dominated by, as small injectors that compose with
:class:`~repro.net.network.Network`:

* **Tdown** — "the destination AS becomes unreachable from the rest of the
  network": the destination's attachment to its destination host is lost, so
  the origin AS withdraws the prefix (the origin itself stays in the graph).
* **Tlong** — "a link in the network fails, which does not disconnect the
  destination AS but forces the rest of the network to use less preferred
  paths": one specific transit link is failed.
* **Session reset** (:class:`SessionReset`) — the transport session between
  two adjacent speakers dies while the link stays up; in-flight updates are
  lost and the peers must re-establish and re-exchange their tables.
* **Node crash** (:class:`NodeCrash`) — a whole router loses its queued
  messages, timers, and RIBs; an optional restart brings it back cold.
* **Link flap** (:class:`LinkFlap`) — a link fails and recovers repeatedly,
  composed from :class:`LinkFailure`/:class:`LinkRestore` pairs.

The protocol-specific half of Tdown (withdrawing an origination) lives on the
protocol node (:meth:`BgpSpeaker.withdraw_origin`); the injector here just
schedules whatever callable the scenario hands it, keeping the failure
machinery protocol-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import NetworkError
from .network import Network


@dataclass(frozen=True)
class LinkFailure:
    """A single link failure at an absolute time."""

    u: int
    v: int
    at: float

    def inject(self, network: Network) -> None:
        network.schedule_link_failure(self.u, self.v, self.at)


@dataclass(frozen=True)
class LinkRestore:
    """A single link restoration at an absolute time."""

    u: int
    v: int
    at: float

    def inject(self, network: Network) -> None:
        network.schedule_link_restore(self.u, self.v, self.at)


@dataclass(frozen=True)
class SessionReset:
    """Reset the transport session on link ``{u, v}`` at time ``at``.

    The physical link stays up; in-flight messages die with the connection
    and both endpoints get their ``on_session_reset`` hook.
    """

    u: int
    v: int
    at: float

    def inject(self, network: Network) -> None:
        network.schedule_session_reset(self.u, self.v, self.at)


@dataclass(frozen=True)
class NodeCrash:
    """Crash ``node`` at time ``at``; optionally restart it later.

    The crash destroys the router's queued messages, timers, and RIBs, and
    takes every incident link down.  ``restart_after`` seconds later (if not
    ``None``) the router comes back cold — empty RIBs, configured
    originations intact — and re-learns the topology as its links return.
    ``silent`` suppresses the neighbors' interface-down notification, so
    they only notice via their own liveness machinery (BGP hold timers).
    """

    node: int
    at: float
    restart_after: Optional[float] = None
    silent: bool = False

    def __post_init__(self) -> None:
        if self.restart_after is not None and self.restart_after <= 0:
            raise NetworkError(
                f"restart_after must be positive, got {self.restart_after}"
            )

    def inject(self, network: Network) -> None:
        network.schedule_node_crash(self.node, self.at, silent=self.silent)
        if self.restart_after is not None:
            network.schedule_node_restart(self.node, self.at + self.restart_after)


@dataclass(frozen=True)
class LinkFlap:
    """Fail and restore link ``{u, v}`` repeatedly, starting at ``at``.

    Flap ``k`` (0-based) fails the link at ``at + k*period`` and restores it
    ``duty * period`` seconds later, so consecutive failures are spaced one
    ``period`` apart and the link ends the sequence *up*.
    """

    u: int
    v: int
    at: float
    period: float
    count: int = 1
    duty: float = 0.5

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise NetworkError(f"flap period must be positive, got {self.period}")
        if self.count < 1:
            raise NetworkError(f"flap count must be >= 1, got {self.count}")
        if not 0 < self.duty < 1:
            raise NetworkError(f"flap duty must be in (0, 1), got {self.duty}")

    def events(self) -> List[object]:
        """The failure/restore pairs this flap expands to, in time order."""
        expanded: List[object] = []
        for k in range(self.count):
            down_at = self.at + k * self.period
            expanded.append(LinkFailure(self.u, self.v, down_at))
            expanded.append(LinkRestore(self.u, self.v, down_at + self.duty * self.period))
        return expanded

    @property
    def last_restore_at(self) -> float:
        """Time the final restore fires (the churn stops changing topology)."""
        return self.at + (self.count - 1) * self.period + self.duty * self.period

    def inject(self, network: Network) -> None:
        for event in self.events():
            event.inject(network)


@dataclass(frozen=True)
class OriginWithdrawal:
    """A Tdown trigger: at time ``at``, run the protocol-supplied action.

    ``action`` is typically ``speaker.withdraw_origin`` bound to the
    destination prefix.
    """

    node: int
    at: float
    action: Callable[[], None]

    def inject(self, network: Network) -> None:
        if self.node not in network.nodes:
            raise NetworkError(f"no node {self.node} for origin withdrawal")
        network.scheduler.call_at(
            self.at, self.action, priority=0, name=f"tdown:{self.node}"
        )


@dataclass
class FailureSchedule:
    """An ordered collection of failure events for one simulation run."""

    events: List[object] = field(default_factory=list)

    def add(self, event) -> "FailureSchedule":
        self.events.append(event)
        return self

    def inject_all(self, network: Network) -> None:
        """Register every event with the network's scheduler."""
        for event in self.events:
            event.inject(network)

    @property
    def first_failure_time(self) -> Optional[float]:
        """Earliest event time, used as the convergence-clock origin."""
        times = [event.at for event in self.events]
        return min(times) if times else None


def flap(u: int, v: int, down_at: float, up_at: float) -> FailureSchedule:
    """A link flap: down at ``down_at``, back up at ``up_at``."""
    if up_at <= down_at:
        raise NetworkError(f"flap must restore after failing ({down_at} -> {up_at})")
    schedule = FailureSchedule()
    schedule.add(LinkFailure(u, v, down_at))
    schedule.add(LinkRestore(u, v, up_at))
    return schedule
