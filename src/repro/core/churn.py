"""Update-churn analysis of the control-plane message trace.

The convergence-time metric compresses all post-failure update activity
into a single number.  :class:`UpdateChurn` keeps the structure: who sent
how much, announcements vs withdrawals, the activity timeline, and the
inter-update spacing per (sender, receiver) pair — which makes the MRAI
round structure directly visible (spacings cluster at the jittered timer
values) and quantifies each enhancement's message cost (e.g. Ghost
Flushing's withdrawal flood on high-degree nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bgp.messages import Announcement, Withdrawal, is_update
from ..errors import AnalysisError
from ..net import MessageTrace


@dataclass
class UpdateChurn:
    """Structured view of post-failure update activity."""

    failure_time: float
    send_times: List[float] = field(default_factory=list)
    per_sender: Dict[int, int] = field(default_factory=dict)
    per_pair: Dict[Tuple[int, int], List[float]] = field(default_factory=dict)
    announcements: int = 0
    withdrawals: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: MessageTrace, failure_time: float) -> "UpdateChurn":
        """Extract all updates sent at or after ``failure_time``."""
        churn = cls(failure_time=failure_time)
        for record in trace:
            if record.time < failure_time or not is_update(record.message):
                continue
            churn.send_times.append(record.time)
            churn.per_sender[record.src] = churn.per_sender.get(record.src, 0) + 1
            churn.per_pair.setdefault((record.src, record.dst), []).append(
                record.time
            )
            if isinstance(record.message, Announcement):
                churn.announcements += 1
            elif isinstance(record.message, Withdrawal):
                churn.withdrawals += 1
        return churn

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def total_updates(self) -> int:
        return len(self.send_times)

    @property
    def withdrawal_fraction(self) -> float:
        """Withdrawals as a fraction of all updates (0 when silent)."""
        if not self.total_updates:
            return 0.0
        return self.withdrawals / self.total_updates

    def busiest_senders(self, top: int = 5) -> List[Tuple[int, int]]:
        """``(node, updates_sent)``, heaviest first."""
        return sorted(self.per_sender.items(), key=lambda kv: (-kv[1], kv[0]))[:top]

    def activity_histogram(self, bin_seconds: float) -> List[int]:
        """Updates per time bin from the failure to the last update.

        The bursty, MRAI-spaced round structure of BGP convergence shows up
        as periodic peaks.
        """
        if bin_seconds <= 0:
            raise AnalysisError(f"bin size must be positive, got {bin_seconds}")
        if not self.send_times:
            return []
        horizon = max(self.send_times) - self.failure_time
        bins = [0] * (int(horizon / bin_seconds) + 1)
        for when in self.send_times:
            bins[int((when - self.failure_time) / bin_seconds)] += 1
        return bins

    def pair_spacings(self) -> List[float]:
        """Gaps between consecutive updates on each (sender, receiver) pair.

        With MRAI rate limiting, announcement spacings cannot fall below the
        minimum jittered timer value; the distribution's lower edge measures
        the effective MRAI in force.
        """
        gaps: List[float] = []
        for times in self.per_pair.values():
            gaps.extend(b - a for a, b in zip(times, times[1:]))
        return gaps

    def min_pair_spacing(self) -> Optional[float]:
        """The smallest observed same-pair gap, or ``None``."""
        gaps = self.pair_spacings()
        return min(gaps) if gaps else None

    def updates_by_round(self, mrai: float) -> List[int]:
        """Updates per MRAI-round-sized window — the exploration cadence."""
        if mrai <= 0:
            raise AnalysisError(f"mrai must be positive, got {mrai}")
        return self.activity_histogram(mrai)
