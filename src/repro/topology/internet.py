"""Internet-like AS topology generator.

The paper evaluated 29/48/75/110-node topologies derived from real 2001-era
BGP routing tables (Premore's AS-graph gallery, no longer available).  As a
substitution we synthesize graphs with the structural features those AS
graphs are used for in the study:

* a small, densely-meshed **core** (tier-1-like ASes),
* a middle layer of **transit** ASes multi-homed into the core,
* a majority of low-degree **stub** ASes hanging off transit providers —
  the paper chooses destination ASes "among the nodes with the lowest
  degrees", i.e. from this stub layer.

The qualitative results that depend on the Internet-derived topologies —
looping persists through convergence, Ghost Flushing helps most, WRATE makes
Tlong looping an order of magnitude worse — are driven by this core/transit/
stub hierarchy (long backup paths through mid-degree nodes), not by the exact
2001 edge list.  The generator is deterministic for a given ``(n, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import TopologyError
from .graph import DEFAULT_LINK_DELAY, Topology

#: Sizes simulated by the paper, usable as a ready-made sweep.
PAPER_SIZES = (29, 48, 75, 110)


@dataclass(frozen=True)
class InternetShape:
    """Layer sizing knobs for :func:`internet_like`.

    Fractions are of the total node count; the remainder becomes stubs.
    Defaults approximate measured AS-graph proportions at small scale.

    ``transit_chain_probability`` controls hierarchy depth: with that
    probability a transit AS homes to an *earlier transit AS* instead of the
    core, producing the chained regional-provider trees that 2001-era AS
    graphs exhibit.  Those chains are what make Tlong events interesting —
    a destination whose backup provider sits deep in a chain has a dominant
    primary, and failing the primary forces genuine path exploration.
    """

    core_fraction: float = 0.10
    transit_fraction: float = 0.30
    core_mesh_probability: float = 0.7
    transit_chain_probability: float = 0.55
    transit_multihome_probability: float = 0.3
    stub_multihome_probability: float = 0.35

    def validate(self) -> None:
        if not 0 < self.core_fraction < 1:
            raise TopologyError(f"core_fraction out of range: {self.core_fraction}")
        if not 0 <= self.transit_fraction < 1:
            raise TopologyError(f"transit_fraction out of range: {self.transit_fraction}")
        if self.core_fraction + self.transit_fraction >= 1:
            raise TopologyError("core + transit fractions must leave room for stubs")
        if not 0 < self.core_mesh_probability <= 1:
            raise TopologyError("core_mesh_probability must be in (0, 1]")
        for name, value in (
            ("transit_chain_probability", self.transit_chain_probability),
            ("transit_multihome_probability", self.transit_multihome_probability),
            ("stub_multihome_probability", self.stub_multihome_probability),
        ):
            if not 0 <= value <= 1:
                raise TopologyError(f"{name} must be in [0, 1], got {value}")


class Tier:
    """AS-hierarchy tier labels assigned by the generator."""

    CORE = "core"
    TRANSIT = "transit"
    STUB = "stub"

    #: Rank used to orient provider/customer relationships (lower = higher
    #: in the hierarchy).
    RANK = {CORE: 0, TRANSIT: 1, STUB: 2}


def internet_like_with_tiers(
    n: int,
    seed: int = 0,
    shape: InternetShape = InternetShape(),
    delay: float = DEFAULT_LINK_DELAY,
) -> Tuple[Topology, Dict[int, str]]:
    """Generate an ``n``-node Internet-like AS graph plus its tier map.

    Returns ``(topology, {node: Tier.CORE | Tier.TRANSIT | Tier.STUB})``.
    Node ids are assigned core-first (``0..``), then transit, then stubs, so
    low ids are high-degree — matching the clique/b-clique convention that
    well-connected nodes carry small ids.  The graph is always connected.
    """
    if n < 8:
        raise TopologyError(f"internet-like graphs need n >= 8, got {n}")
    shape.validate()
    rng = random.Random(seed)

    num_core = max(3, round(n * shape.core_fraction))
    num_transit = max(2, round(n * shape.transit_fraction))
    num_stub = n - num_core - num_transit
    if num_stub < 1:
        raise TopologyError(
            f"shape leaves no stub nodes for n={n} "
            f"(core={num_core}, transit={num_transit})"
        )

    topo = Topology(f"internet-{n}-seed{seed}")
    core = list(range(num_core))
    transit = list(range(num_core, num_core + num_transit))
    stubs = list(range(num_core + num_transit, n))

    _mesh_core(topo, core, shape.core_mesh_probability, rng, delay)
    _attach_transit(topo, transit, core, shape, rng, delay)
    _attach_stubs(topo, stubs, transit, shape.stub_multihome_probability, rng, delay)

    assert topo.is_connected(), "generator invariant: graph must be connected"
    tiers = {node: Tier.CORE for node in core}
    tiers.update({node: Tier.TRANSIT for node in transit})
    tiers.update({node: Tier.STUB for node in stubs})
    return topo, tiers


def internet_like(
    n: int,
    seed: int = 0,
    shape: InternetShape = InternetShape(),
    delay: float = DEFAULT_LINK_DELAY,
) -> Topology:
    """Generate an ``n``-node Internet-like AS graph (topology only).

    See :func:`internet_like_with_tiers` for the variant that also returns
    the core/transit/stub tier assignment (needed to derive Gao-Rexford
    business relationships).
    """
    topo, _tiers = internet_like_with_tiers(n, seed=seed, shape=shape, delay=delay)
    return topo


def _mesh_core(
    topo: Topology, core: List[int], mesh_p: float, rng: random.Random, delay: float
) -> None:
    """Densely mesh the core, guaranteeing connectivity via a ring."""
    for i, u in enumerate(core):
        topo.add_edge(u, core[(i + 1) % len(core)], delay)
    for i, u in enumerate(core):
        for v in core[i + 2 :]:
            if not topo.has_edge(u, v) and rng.random() < mesh_p:
                topo.add_edge(u, v, delay)


def _attach_transit(
    topo: Topology,
    transit: List[int],
    core: List[int],
    shape: InternetShape,
    rng: random.Random,
    delay: float,
) -> None:
    """Home each transit AS either to the core or to an earlier transit AS.

    Chaining (the second case) builds regional provider trees of depth > 1;
    occasional multihoming adds the lateral links through which long backup
    paths run.
    """
    for idx, node in enumerate(transit):
        chain = idx > 0 and rng.random() < shape.transit_chain_probability
        provider = rng.choice(transit[:idx]) if chain else rng.choice(core)
        topo.add_edge(node, provider, delay)
        if rng.random() < shape.transit_multihome_probability:
            second = rng.choice(core + transit[:idx])
            if second != node and not topo.has_edge(node, second):
                topo.add_edge(node, second, delay)


def _attach_stubs(
    topo: Topology,
    stubs: List[int],
    transit: List[int],
    multihome_p: float,
    rng: random.Random,
    delay: float,
) -> None:
    """Hang each stub off one transit provider, sometimes two."""
    for node in stubs:
        provider = rng.choice(transit)
        topo.add_edge(node, provider, delay)
        if rng.random() < multihome_p:
            second = rng.choice(transit)
            if second != provider and not topo.has_edge(node, second):
                topo.add_edge(node, second, delay)


def choose_destination(topo: Topology, seed: int = 0) -> int:
    """Pick a destination AS the way the paper does.

    "The destination AS was randomly chosen among the nodes with the lowest
    degrees" — we take the nodes sharing the minimum degree and draw one
    uniformly with the given seed.
    """
    rng = random.Random(seed)
    degrees = {node: topo.degree(node) for node in topo.nodes}
    lowest = min(degrees.values())
    candidates = sorted(node for node, deg in degrees.items() if deg == lowest)
    return rng.choice(candidates)


def choose_failure_link(topo: Topology, destination: int, seed: int = 0) -> tuple:
    """Pick one of the destination's links to fail for a Tlong event.

    Only links whose removal keeps the destination connected qualify (a Tlong
    event "does not disconnect the destination AS").  Among those, the link
    carrying the most traffic is chosen — i.e. the neighbor through which
    the largest number of sources reach the destination under shortest-path
    routing — because a Tlong event by definition "forces the rest of the
    network to use less preferred paths"; failing an unused backup link
    would be a non-event.  ``seed`` breaks ties only.

    Raises :class:`TopologyError` when the destination is single-homed, in
    which case the caller should retry with a different destination.
    """
    rng = random.Random(seed)
    candidates = [
        nbr
        for nbr in topo.neighbors(destination)
        if not topo.is_cut_edge(destination, nbr)
    ]
    if not candidates:
        raise TopologyError(
            f"destination {destination} has no failable link that keeps it "
            "connected; pick a multi-homed destination for Tlong"
        )
    served = {nbr: _sources_served(topo, destination, nbr) for nbr in candidates}
    top = max(served.values())
    primary = sorted(nbr for nbr, count in served.items() if count == top)
    return (destination, rng.choice(primary))


def provider_load(topo: Topology, destination: int) -> dict:
    """Sources served by each of the destination's providers.

    ``{provider: count}`` where count is the number of sources whose
    shortest path to ``destination`` exits through that provider.  The
    dominance of the top provider predicts how disruptive failing its link
    is: a destination whose primary serves nearly everything behaves like
    the B-Clique's edge link, while balanced providers fail over silently.
    """
    return {
        provider: _sources_served(topo, destination, provider)
        for provider in topo.neighbors(destination)
    }


def _sources_served(topo: Topology, destination: int, provider: int) -> int:
    """How many sources reach ``destination`` with ``provider`` as last hop.

    Approximates the shortest-path decision: a source uses the provider
    closest to it (hop count, ties to the smaller provider id — the
    library's tie-break).
    """
    providers = topo.neighbors(destination)
    distance = {p: _bfs_distances(topo, p, skip=destination) for p in providers}
    count = 0
    for node in topo.nodes:
        if node == destination or node in providers:
            best = None
            if node in providers:
                best = node  # a provider reaches the destination directly
            if best == provider:
                count += 1
            continue
        best_key = None
        best_provider = None
        for p in providers:
            dist = distance[p].get(node)
            if dist is None:
                continue
            key = (dist, p)
            if best_key is None or key < best_key:
                best_key = key
                best_provider = p
        if best_provider == provider:
            count += 1
    return count


def _bfs_distances(topo: Topology, start: int, skip: int) -> dict:
    """Hop counts from ``start``, never routing through ``skip``."""
    distances = {start: 0}
    frontier = [start]
    while frontier:
        nxt = []
        for node in frontier:
            for nbr in topo.neighbors(node):
                if nbr == skip or nbr in distances:
                    continue
                distances[nbr] = distances[node] + 1
                nxt.append(nbr)
        frontier = nxt
    return distances
