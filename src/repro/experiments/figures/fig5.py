"""Figure 5: looping duration and convergence time vs MRAI value.

Both metrics are linearly proportional to the MRAI timer value M (the
paper's Observation 1, and for convergence time the Griffin-Premore result
it confirms).  Panel (a) sweeps M for Tdown in a Clique, panel (b) for Tlong
in a B-Clique.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...core import check_linear_in_mrai
from ..config import RunSettings
from ..resilience import ResiliencePolicy
from ..report import FigureData
from ..scenarios import bclique_tlong_fixed, clique_tdown_fixed
from ..spec import factory_ref
from .common import metric_sweep_figure

_METRICS = ("looping_duration", "convergence_time")


def _with_linearity_checks(figure: FigureData) -> FigureData:
    for metric in _METRICS:
        check = check_linear_in_mrai(figure.xs, figure.series[metric])
        figure.checks.append(
            type(check)(
                name=f"obs1-{metric}-linear-in-mrai",
                holds=check.holds,
                detail=check.detail,
            )
        )
    return figure


def figure5a(
    mrai_values: Sequence[float] = (7.5, 15.0, 30.0, 45.0),
    clique_size: int = 10,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Tdown in a Clique: both curves scale linearly with M."""
    figure, _points = metric_sweep_figure(
        "fig5a",
        f"Tdown metrics vs MRAI (Clique-{clique_size})",
        "mrai",
        list(mrai_values),
        factory_ref(clique_tdown_fixed, size=clique_size),
        _METRICS,
        seeds=seeds,
        settings=settings,
        mrai_is_x=True,
        jobs=jobs,
        policy=policy,
    )
    return _with_linearity_checks(figure)


def figure5b(
    mrai_values: Sequence[float] = (7.5, 15.0, 30.0, 45.0),
    bclique_size: int = 8,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Tlong in a B-Clique: both curves scale linearly with M."""
    figure, _points = metric_sweep_figure(
        "fig5b",
        f"Tlong metrics vs MRAI (B-Clique-{bclique_size})",
        "mrai",
        list(mrai_values),
        factory_ref(bclique_tlong_fixed, size=bclique_size),
        _METRICS,
        seeds=seeds,
        settings=settings,
        mrai_is_x=True,
        jobs=jobs,
        policy=policy,
    )
    return _with_linearity_checks(figure)
