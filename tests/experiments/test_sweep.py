"""Tests for sweeps and aggregation."""

import pytest

from repro.bgp import BgpConfig
from repro.errors import AnalysisError
from repro.experiments import RunSettings, series, sweep, tdown_clique, xs_of

FAST = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(failure_guard=0.5)


@pytest.fixture(scope="module")
def points():
    return sweep(
        [3, 4],
        lambda x, seed: tdown_clique(int(x)),
        lambda x: FAST,
        seeds=(0, 1),
        settings=SETTINGS,
    )


class TestSweep:
    def test_one_point_per_x(self, points):
        assert xs_of(points) == [3, 4]

    def test_trials_per_point(self, points):
        assert all(len(point.runs) == 2 for point in points)

    def test_series_extraction(self, points):
        conv = series(points, "convergence_time")
        assert len(conv) == 2
        assert all(value > 0 for value in conv)

    def test_mean_metric_is_trial_mean(self, points):
        point = points[0]
        values = [r.summary_row()["convergence_time"] for r in point.results]
        assert point.mean_metric("convergence_time") == pytest.approx(
            sum(values) / len(values)
        )

    def test_metrics_dict(self, points):
        metrics = points[0].metrics()
        assert "looping_ratio" in metrics and "ttl_exhaustions" in metrics

    def test_config_factory_receives_x(self):
        seen = []

        def make_config(x):
            seen.append(x)
            return FAST

        sweep(
            [3],
            lambda x, seed: tdown_clique(int(x)),
            make_config,
            seeds=(0,),
            settings=SETTINGS,
        )
        assert seen == [3]

    def test_empty_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            sweep([], lambda x, s: tdown_clique(3), lambda x: FAST)
        with pytest.raises(AnalysisError):
            sweep([3], lambda x, s: tdown_clique(3), lambda x: FAST, seeds=())

    def test_empty_point_raises_on_aggregation(self):
        from repro.experiments import SweepPoint

        with pytest.raises(AnalysisError):
            SweepPoint(x=1.0).mean_metric("convergence_time")
