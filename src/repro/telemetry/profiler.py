"""Harness-side wall-clock profiling.

This is the **only** module under ``src/repro`` sanctioned to read the
wall clock: the determinism linter's REP101 rule carves out exactly this
file (see ``RULE_EXEMPT_SUFFIXES`` in :mod:`repro.analysis.lint`).  The
boundary is deliberate — simulation code must be a pure function of
(code, scenario, config, seed), so anything *inside* a run keys off
simulation time; measuring how long the harness takes to execute sweeps
and figures is an observation *about* the harness and lives out here.

Nothing in this module may be imported by engine/net/bgp/dataplane code.
The consumers are benchmarks, the CLI, and sweep drivers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple
from contextlib import contextmanager

from ..errors import TelemetryError


@dataclass(frozen=True)
class PhaseTiming:
    """One completed wall-clock phase."""

    name: str
    seconds: float


@dataclass
class PhaseProfiler:
    """Accumulates named wall-clock phases on the harness side.

    Use as a context manager per phase::

        profiler = PhaseProfiler()
        with profiler.phase("sweep"):
            points = sweep(...)
        with profiler.phase("render"):
            figure.render()
        print(profiler.render())

    Re-entering a phase name accumulates into the same bucket, so a
    per-trial loop can reuse one phase.  Nested phases are allowed and
    timed independently.
    """

    _totals: Dict[str, float] = field(default_factory=dict)
    _order: List[str] = field(default_factory=list)
    _active: List[str] = field(default_factory=list)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (wall clock)."""
        self._active.append(name)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._active.pop()
            if name not in self._totals:
                self._totals[name] = 0.0
                self._order.append(name)
            self._totals[name] += elapsed

    def seconds(self, name: str) -> float:
        """Total wall seconds accumulated under ``name``."""
        try:
            return self._totals[name]
        except KeyError:
            raise TelemetryError(f"no phase named {name!r} was recorded") from None

    def timings(self) -> Tuple[PhaseTiming, ...]:
        """All completed phases, in first-entered order."""
        if self._active:
            raise TelemetryError(
                f"cannot summarize while phases are active: {self._active}"
            )
        return tuple(
            PhaseTiming(name=name, seconds=self._totals[name])
            for name in self._order
        )

    @property
    def total_seconds(self) -> float:
        return sum(self._totals.values())

    def render(self, indent: str = "  ") -> str:
        """An aligned text table of phase timings with percentages."""
        timings = self.timings()
        if not timings:
            return f"{indent}(no phases recorded)"
        total = self.total_seconds or 1.0
        width = max(len(t.name) for t in timings)
        lines = [
            f"{indent}{t.name:<{width}} {t.seconds:8.3f}s "
            f"{100.0 * t.seconds / total:5.1f}%"
            for t in timings
        ]
        lines.append(f"{indent}{'total':<{width}} {self.total_seconds:8.3f}s")
        return "\n".join(lines)


def wall_time() -> float:
    """The harness wall clock (monotonic seconds).

    A single choke point so harness code (benchmarks, CLI progress
    output) does not sprinkle raw ``time.perf_counter()`` calls that
    would each need lint triage.
    """
    return time.perf_counter()


@dataclass(frozen=True)
class Stopwatch:
    """A started wall-clock measurement; immutable, read with :meth:`elapsed`."""

    started: float

    @staticmethod
    def start() -> "Stopwatch":
        return Stopwatch(started=wall_time())

    def elapsed(self) -> float:
        return wall_time() - self.started


def time_callable(fn, repeats: int = 1) -> Tuple[float, Optional[object]]:
    """Best-of-``repeats`` wall time for ``fn()`` and its last return value.

    The benchmark helper: best-of-N suppresses scheduler noise without
    needing pytest-benchmark's calibration machinery.
    """
    if repeats < 1:
        raise TelemetryError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: Optional[object] = None
    for _ in range(repeats):
        watch = Stopwatch.start()
        result = fn()
        best = min(best, watch.elapsed())
    return best, result
