"""Event objects for the discrete-event simulation engine.

An :class:`Event` couples a firing time with a zero-argument callback.  Events
are totally ordered by ``(time, priority, sequence)`` so that:

* earlier events always fire first,
* simultaneous events fire in ascending priority,
* ties are broken by scheduling order (FIFO), which keeps runs deterministic
  for a fixed seed.

Events can be cancelled; a cancelled event stays in the scheduler's heap but
is skipped when popped (lazy deletion), which keeps cancellation O(1).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional


class EventPriority(enum.IntEnum):
    """Relative ordering of events that fire at exactly the same time.

    The specific values only matter relative to each other.  Network message
    deliveries happen before timer expirations at the same instant, which
    mirrors how real routers drain input queues before servicing timers.
    """

    CONTROL = 0       # simulation control (failure injection, probes)
    DELIVERY = 10     # message arrival at a node
    PROCESSING = 20   # completion of a node's message-processing slot
    TIMER = 30        # protocol timers (MRAI and friends)
    MONITOR = 90      # observers and metric sampling run last


class Event:
    """A single scheduled occurrence in the simulation.

    Instances are created by :class:`repro.engine.scheduler.Scheduler`; user
    code normally only keeps the returned handle in order to ``cancel()`` it.

    **Housekeeping events** are periodic background activity — BGP keepalive
    schedules, hold-timer re-arms — that would otherwise keep the heap
    populated forever and defeat run-to-quiescence.  The scheduler keeps an
    exact count of pending *substantive* (non-housekeeping) events; when it
    reaches zero the simulation's routing activity has quiesced even though
    housekeeping heartbeats remain armed.  An event's classification can be
    upgraded in place (:meth:`mark_substantive`) — the serialized router CPU
    uses that when substantive work queues behind a housekeeping job.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "action",
        "name",
        "housekeeping",
        "_cancelled",
        "_fired",
        "_counter",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[[], None],
        name: Optional[str] = None,
        housekeeping: bool = False,
        counter: Optional[object] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.name = name or getattr(action, "__name__", "event")
        self.housekeeping = housekeeping
        self._cancelled = False
        self._fired = False
        # The scheduler that counts this event while pending (None for
        # events constructed outside a scheduler, e.g. in unit tests).
        self._counter = counter

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the event's action has run."""
        return self._fired

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an event that already fired (or was already cancelled) is
        a no-op, so callers do not need to track firing state themselves.
        """
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._counter is not None:
            if not self.housekeeping:
                self._counter._adjust_substantive(-1)
            self._counter._note_cancelled()

    def mark_substantive(self) -> None:
        """Upgrade a pending housekeeping event to substantive.

        No-op if the event is already substantive, cancelled, or fired.
        """
        if not self.housekeeping or self._cancelled or self._fired:
            return
        self.housekeeping = False
        if self._counter is not None:
            self._counter._adjust_substantive(+1)

    def sort_key(self) -> tuple:
        """The total-order key used by the scheduler's heap."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<Event {self.name!r} t={self.time:.6f} prio={self.priority} {state}>"
