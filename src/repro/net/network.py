"""The network: nodes wired together by links according to a topology.

:class:`Network` is the glue between the static :class:`~repro.topology.Topology`
and the live simulation: it instantiates one :class:`~repro.net.link.Link`
per topology edge, routes ``send()`` calls onto the right channel, records
every send in a :class:`~repro.net.trace.MessageTrace`, and implements
link-failure injection with immediate endpoint notification (interface-down
detection, which is how the paper's node 4 knows to send withdrawals the
moment link [4 0] fails).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from ..engine import Scheduler
from ..errors import NetworkError
from ..topology import Topology
from .link import Link
from .node import Node
from .trace import MessageTrace

NodeFactory = Callable[[int, Scheduler], Node]


def _edge_key(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


class Network:
    """A live network of protocol nodes over a topology.

    Parameters
    ----------
    topology:
        The intended adjacency graph (never mutated by the network).
    scheduler:
        Shared simulation scheduler.
    node_factory:
        ``factory(node_id, scheduler) -> Node`` used to build every node.
    """

    def __init__(
        self,
        topology: Topology,
        scheduler: Scheduler,
        node_factory: NodeFactory,
    ) -> None:
        self.topology = topology
        self.scheduler = scheduler
        self.trace = MessageTrace()
        self.nodes: Dict[int, Node] = {}
        self._links: Dict[Tuple[int, int], Link] = {}
        # node -> links its crash took down (restored on restart, unless the
        # far endpoint is itself still crashed).
        self._crashed: Dict[int, List[Tuple[int, int]]] = {}

        for node_id in topology.nodes:
            node = node_factory(node_id, scheduler)
            if node.node_id != node_id:
                raise NetworkError(
                    f"factory returned node id {node.node_id} for requested {node_id}"
                )
            node.attach(self)
            self.nodes[node_id] = node

        for u, v, delay in topology.edges():
            self._links[_edge_key(u, v)] = Link(
                scheduler,
                u,
                v,
                delay,
                deliver_to_u=self.nodes[u].deliver,
                deliver_to_v=self.nodes[v].deliver,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def node(self, node_id: int) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise NetworkError(f"no node {node_id} in network") from None

    def link(self, u: int, v: int) -> Link:
        try:
            return self._links[_edge_key(u, v)]
        except KeyError:
            raise NetworkError(f"no link ({u}, {v}) in network") from None

    def link_is_up(self, u: int, v: int) -> bool:
        """True when the adjacency exists and has not been failed."""
        link = self._links.get(_edge_key(u, v))
        return link is not None and link.up

    def node_is_up(self, node_id: int) -> bool:
        """True when the node exists and is not currently crashed."""
        return node_id in self.nodes and node_id not in self._crashed

    def live_neighbors(self, node_id: int) -> List[int]:
        """Neighbors of ``node_id`` reachable over currently-up links."""
        return [
            nbr
            for nbr in self.topology.neighbors(node_id)
            if self.link_is_up(node_id, nbr)
        ]

    @property
    def links(self) -> List[Link]:
        return [self._links[key] for key in sorted(self._links)]

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, message: Any) -> None:
        """Send a control-plane message from ``src`` to adjacent ``dst``."""
        link = self.link(src, dst)
        if not link.up:
            raise NetworkError(f"link ({src}, {dst}) is down")
        self.trace.record(self.scheduler.now, src, dst, message)
        link.send(src, message)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def fail_link(self, u: int, v: int, silent: bool = False) -> None:
        """Fail link ``{u, v}`` now: drop in-flight messages, notify ends.

        With ``silent=False`` (the default, and the paper's model) both
        endpoints are notified immediately — interface-level detection.
        ``silent=True`` models a failure the interfaces do not report (a
        one-way fault, a middlebox dying): the channels go dark but no
        ``on_link_down`` fires, so a protocol only discovers the loss
        through its own liveness mechanism (BGP hold timers).  Idempotent
        on an already-down link.
        """
        link = self.link(u, v)
        if not link.up:
            return
        link.take_down()
        if not silent:
            self.nodes[u].on_link_down(v)
            self.nodes[v].on_link_down(u)

    def restore_link(self, u: int, v: int) -> None:
        """Bring link ``{u, v}`` back up and notify both endpoints."""
        link = self.link(u, v)
        if link.up:
            return
        link.bring_up()
        self.nodes[u].on_link_up(v)
        self.nodes[v].on_link_up(u)

    def schedule_link_failure(
        self, u: int, v: int, at: float, silent: bool = False
    ) -> None:
        """Arrange for ``fail_link(u, v, silent)`` at absolute time ``at``."""
        self.link(u, v)  # validate now, fail later
        self.scheduler.call_at(
            at,
            lambda: self.fail_link(u, v, silent=silent),
            priority=0,
            name=f"fail:{u}-{v}",
        )

    def schedule_link_restore(self, u: int, v: int, at: float) -> None:
        """Arrange for ``restore_link(u, v)`` at absolute time ``at``."""
        self.link(u, v)
        self.scheduler.call_at(
            at, lambda: self.restore_link(u, v), priority=0, name=f"restore:{u}-{v}"
        )

    # ------------------------------------------------------------------
    # Session and whole-node fault injection
    # ------------------------------------------------------------------

    def reset_session(self, u: int, v: int) -> None:
        """Reset the transport session on link ``{u, v}``; the link stays up.

        In-flight messages in both directions are destroyed (the TCP
        connection carrying them is gone) and both endpoints get their
        :meth:`Node.on_session_reset` hook, after which re-establishment —
        and the full-table re-exchange it triggers — is the protocol's job.
        """
        link = self.link(u, v)
        link.reset()
        self.nodes[u].on_session_reset(v)
        self.nodes[v].on_session_reset(u)

    def crash_node(self, node_id: int, silent: bool = False) -> None:
        """Crash ``node_id`` now: queued messages, timers, and RIBs are lost.

        Every incident link that was up is taken down (in-flight messages
        destroyed).  With ``silent=False`` the surviving endpoints are
        notified immediately (interface-level detection of the dead router);
        ``silent=True`` leaves them to discover the loss through their own
        liveness machinery (BGP hold timers).  Idempotent on an
        already-crashed node.
        """
        node = self.node(node_id)
        if node_id in self._crashed:
            return
        took_down: List[Tuple[int, int]] = []
        for nbr in sorted(self.topology.neighbors(node_id)):
            link = self._links[_edge_key(node_id, nbr)]
            if link.up:
                link.take_down()
                took_down.append(_edge_key(node_id, nbr))
                if not silent:
                    self.nodes[nbr].on_link_down(node_id)
        self._crashed[node_id] = took_down
        node.crash()

    def restart_node(self, node_id: int) -> None:
        """Restart a crashed node: it comes back cold and re-learns.

        Links its crash took down are restored (both endpoints notified),
        except toward peers that are themselves still crashed — those links
        come back when the last-down peer restarts.  No-op on a node that is
        not crashed.
        """
        node = self.node(node_id)
        took_down = self._crashed.pop(node_id, None)
        if took_down is None:
            return
        node.restart()
        for key in took_down:
            u, v = key
            other = v if u == node_id else u
            if other in self._crashed:
                # The far end is still down; hand the link over to its
                # crash record so its restart restores it.
                self._crashed[other].append(key)
                continue
            link = self._links[key]
            if not link.up:
                link.bring_up()
                self.nodes[u].on_link_up(v)
                self.nodes[v].on_link_up(u)

    def schedule_session_reset(self, u: int, v: int, at: float) -> None:
        """Arrange for ``reset_session(u, v)`` at absolute time ``at``."""
        self.link(u, v)  # validate now, reset later
        self.scheduler.call_at(
            at, lambda: self.reset_session(u, v), priority=0, name=f"reset:{u}-{v}"
        )

    def schedule_node_crash(
        self, node_id: int, at: float, silent: bool = False
    ) -> None:
        """Arrange for ``crash_node(node_id, silent)`` at absolute time ``at``."""
        self.node(node_id)
        self.scheduler.call_at(
            at,
            lambda: self.crash_node(node_id, silent=silent),
            priority=0,
            name=f"crash:{node_id}",
        )

    def schedule_node_restart(self, node_id: int, at: float) -> None:
        """Arrange for ``restart_node(node_id)`` at absolute time ``at``."""
        self.node(node_id)
        self.scheduler.call_at(
            at,
            lambda: self.restart_node(node_id),
            priority=0,
            name=f"restart:{node_id}",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Invoke every node's start hook (ascending id, deterministic)."""
        for node_id in sorted(self.nodes):
            self.nodes[node_id].start()

    def total_messages(self) -> int:
        """Total control-plane messages recorded by the trace."""
        return len(self.trace)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Network n={len(self.nodes)} links={len(self._links)} "
            f"messages={len(self.trace)}>"
        )
