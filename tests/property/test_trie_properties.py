"""Property-based tests for the path-compressed radix trie itself.

:mod:`tests.property.test_lpm_properties` checks the trie through the
FIB's longest-prefix-match surface; this module targets the other two
consumers of :class:`repro.prefixes.trie.RadixTrie` — containment
(``covered``, the specifics-enumeration walk aggregation relies on) and
deterministic enumeration (``entries``) — against a brute-force dict
oracle under randomized populations, plus the exact-match dict semantics
(``insert`` replaces, ``remove`` clears, interior skeleton retained).
"""

from hypothesis import given, strategies as st

from repro.prefixes import ADDRESS_SPACE, PrefixSpec
from repro.prefixes.trie import RadixTrie

prefix_specs = st.builds(
    lambda raw, length: PrefixSpec(
        raw & PrefixSpec(0, length).network_mask if length else 0, length
    ),
    st.integers(min_value=0, max_value=ADDRESS_SPACE - 1),
    st.integers(min_value=0, max_value=32),
)


def build(specs):
    """A trie and its dict oracle from an insertion sequence."""
    trie = RadixTrie()
    table = {}
    for payload, spec in enumerate(specs):
        trie.insert(spec, payload)
        table[spec] = payload  # duplicates: last payload wins on both sides
    return trie, table


@given(st.lists(prefix_specs, max_size=40), prefix_specs)
def test_covered_agrees_with_brute_force(specs, cover):
    trie, table = build(specs)
    expected = sorted(
        ((spec, payload) for spec, payload in table.items() if cover.covers(spec)),
        key=lambda entry: (entry[0].value, entry[0].length),
    )
    assert trie.covered(cover) == expected


@given(st.lists(prefix_specs, max_size=40))
def test_entries_enumerates_all_in_canonical_order(specs):
    trie, table = build(specs)
    assert len(trie) == len(table)
    expected = sorted(
        table.items(), key=lambda entry: (entry[0].value, entry[0].length)
    )
    assert trie.entries() == expected
    # Host-order-bit: entries() is covered() from the default-route cover.
    assert trie.covered(PrefixSpec(0, 0)) == expected


@given(st.lists(prefix_specs, max_size=30, unique=True))
def test_enumeration_is_insertion_order_independent(specs):
    forward = RadixTrie()
    backward = RadixTrie()
    for spec in specs:
        forward.insert(spec, str(spec))
    for spec in reversed(specs):
        backward.insert(spec, str(spec))
    assert forward.entries() == backward.entries()


@given(st.lists(prefix_specs, max_size=30), st.data())
def test_exact_match_tracks_dict_semantics(specs, data):
    trie, table = build(specs)
    removed = (
        data.draw(
            st.lists(
                st.sampled_from(sorted(table, key=str)), unique=True, max_size=10
            )
        )
        if table
        else []
    )
    for spec in removed:
        assert trie.remove(spec)
        assert not trie.remove(spec)
        del table[spec]
    probes = list(table) + removed + data.draw(
        st.lists(prefix_specs, max_size=5)
    )
    for spec in probes:
        assert (spec in trie) == (spec in table)
        assert trie.get(spec) == table.get(spec)


@given(
    st.integers(min_value=0, max_value=ADDRESS_SPACE - 1),
    st.integers(min_value=1, max_value=28),
    st.integers(min_value=1, max_value=4),
)
def test_covered_walks_an_aggregation_block(raw, length, bits):
    """A cover plus its 2^k specifics: the walk sees cover-first order,
    siblings of the cover stay invisible, and re-inserting after removal
    reuses the retained skeleton without duplicating entries."""
    cover = PrefixSpec(raw & PrefixSpec(0, length).network_mask, length)
    specifics = cover.split(bits)
    trie = RadixTrie()
    trie.insert(cover, "cover")
    for spec in specifics:
        trie.insert(spec, "specific")

    walked = trie.covered(cover)
    assert walked[0] == (cover, "cover")
    assert [spec for spec, _ in walked[1:]] == specifics
    # Each specific's own subtree walk sees only itself.
    for spec in specifics:
        assert trie.covered(spec) == [(spec, "specific")]

    # Aggregation withdraws the specifics; the cover keeps matching and the
    # retained interior skeleton must not leak phantom entries.
    for spec in specifics:
        assert trie.remove(spec)
    assert trie.covered(cover) == [(cover, "cover")]
    for spec in specifics:  # deaggregate again onto the retained skeleton
        trie.insert(spec, "specific")
    assert trie.covered(cover) == walked
    assert len(trie) == 1 + len(specifics)
