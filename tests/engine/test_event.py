"""Unit tests for repro.engine.event."""

import pytest

from repro.engine import Event, EventPriority


def make(time, priority=EventPriority.TIMER, seq=0, name=None):
    return Event(time, int(priority), seq, lambda: None, name)


class TestOrdering:
    def test_earlier_time_sorts_first(self):
        assert make(1.0) < make(2.0)

    def test_same_time_lower_priority_first(self):
        a = make(1.0, EventPriority.DELIVERY, seq=5)
        b = make(1.0, EventPriority.TIMER, seq=1)
        assert a < b

    def test_same_time_same_priority_fifo(self):
        a = make(1.0, seq=1)
        b = make(1.0, seq=2)
        assert a < b

    def test_sort_key_matches_comparison(self):
        a, b = make(1.0, seq=1), make(1.0, seq=2)
        assert (a.sort_key() < b.sort_key()) == (a < b)

    def test_delivery_before_processing_before_timer(self):
        assert EventPriority.DELIVERY < EventPriority.PROCESSING < EventPriority.TIMER


class TestCancellation:
    def test_fresh_event_not_cancelled(self):
        assert not make(0.0).cancelled

    def test_cancel_marks_event(self):
        event = make(0.0)
        event.cancel()
        assert event.cancelled

    def test_cancel_is_idempotent(self):
        event = make(0.0)
        event.cancel()
        event.cancel()
        assert event.cancelled


class TestNaming:
    def test_explicit_name_kept(self):
        assert make(0.0, name="mrai").name == "mrai"

    def test_name_defaults_to_callable_name(self):
        def my_action():
            pass

        event = Event(0.0, 0, 0, my_action)
        assert event.name == "my_action"
