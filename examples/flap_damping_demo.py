#!/usr/bin/env python
"""Route-flap damping meets path exploration (Mao et al., SIGCOMM 2002).

BGP's post-failure path exploration — the very behavior this library
reproduces from the ICDCS 2004 paper — emits a burst of route changes per
neighbor.  To an RFC 2439 damper that burst is indistinguishable from a
flapping route, so dampers suppress routes that are merely *converging*,
and the network only finishes converging when the reuse timers fire.

This demo runs one Tlong event on a B-Clique twice (with and without
damping) and prints the difference, plus the per-node suppression counts.

Usage::

    python examples/flap_damping_demo.py [bclique_size] [mrai]
"""

import sys

from repro.bgp import BgpConfig, DampingConfig
from repro.experiments import RunSettings, run_experiment, tlong_bclique
from repro.util import render_table


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    mrai = float(sys.argv[2]) if len(sys.argv) > 2 else 5.0
    damping = DampingConfig(half_life=120.0, max_suppress_time=600.0)
    scenario = tlong_bclique(size)
    print(
        f"Tlong on B-Clique-{size}, MRAI {mrai}s; damping: suppress at "
        f"{damping.suppress_threshold:.0f}, reuse at "
        f"{damping.reuse_threshold:.0f}, half-life {damping.half_life:.0f}s.\n"
    )

    rows = []
    damped_run = None
    for label, config in (
        ("plain BGP", BgpConfig.standard(mrai)),
        ("with damping", BgpConfig(mrai=mrai, damping=damping)),
    ):
        run = run_experiment(
            scenario, config, RunSettings(), seed=0, keep_network=True
        )
        suppressions = sum(
            node.damper.suppressions
            for node in run.network.nodes.values()
            if node.damper is not None
        )
        rows.append(
            [
                label,
                run.result.convergence_time,
                run.result.ttl_exhaustions,
                run.result.convergence.update_count,
                suppressions,
            ]
        )
        if label == "with damping":
            damped_run = run
    print(
        render_table(
            ["config", "convergence_s", "ttl_exhaustions", "updates",
             "suppressions"],
            rows,
            title="One failure, with and without route-flap damping",
        )
    )

    assert damped_run is not None and damped_run.network is not None
    busiest = sorted(
        (
            (node.damper.suppressions, nid)
            for nid, node in damped_run.network.nodes.items()
            if node.damper is not None and node.damper.suppressions
        ),
        reverse=True,
    )
    if busiest:
        listing = ", ".join(f"AS{nid} x{count}" for count, nid in busiest[:5])
        print(f"\nMost suppression-happy dampers: {listing}")
    print(
        "\nTakeaway: damping lengthens convergence after a SINGLE event by"
        "\nroughly an order of magnitude here — exploration looks like"
        "\nflapping.  (This is why operators today run damping with far"
        "\nmore conservative thresholds, if at all.)"
    )


if __name__ == "__main__":
    main()
