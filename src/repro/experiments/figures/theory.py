"""§3.2 validation: measured loop lifetimes vs the (m-1)·M bound.

Not a figure in the paper, but the analytical claim its figures rest on.  We
build the ring-with-core topology (an m-ring handed a failure that forces a
counterclockwise resolution walk), measure the longest single-loop lifetime
from the FIB history, and compare it against the worst-case bound
``(m - 1) × M_max`` (jitter makes the effective M at most the configured
value here, since jitter factors are <= 1).
"""

from __future__ import annotations

from typing import List, Sequence

from ...bgp import BgpConfig
from ...core import ObservationCheck, longest_loop_duration, worst_case_loop_duration
from ...topology import ring_with_core
from ..config import RunSettings
from ..report import FigureData
from ..runner import run_experiment
from ..scenarios import custom_tlong


def theory_bound_figure(
    ring_sizes: Sequence[int] = (3, 4, 5, 6),
    mrai: float = 10.0,
    backup_len: int = 2,
    seeds: Sequence[int] = (0, 1),
    settings: RunSettings = RunSettings(),
) -> FigureData:
    """Longest measured loop lifetime vs the §3.2 worst-case bound.

    The scenario: nodes ``0..m-1`` form a ring; ring node 0 holds the
    primary link to the destination (node ``m``) and ring node 1 heads a
    longer backup chain to it.  Failing the primary link forces the ring
    members through stale paths via each other — the Figure 2 situation —
    and each single loop among the m ring members must resolve within
    ``(m - 1) × M`` seconds.
    """
    measured: List[float] = []
    bounds: List[float] = []
    slack = 2.0  # processing + propagation allowance beyond the MRAI terms
    config = BgpConfig.standard(mrai)
    for m in ring_sizes:
        topo = ring_with_core(m, backup_len)
        destination = m
        worst = 0.0
        for seed in seeds:
            scenario = custom_tlong(
                topo,
                destination,
                failed_link=(0, m),
                name=f"ring{m}-tlong",
            )
            run = run_experiment(scenario, config, settings=settings, seed=seed)
            worst = max(worst, longest_loop_duration(run.result.loop_intervals))
        measured.append(worst)
        bounds.append(worst_case_loop_duration(m, mrai))

    figure = FigureData(
        figure_id="theory",
        title="Longest loop lifetime vs the (m-1)*M bound (ring scenarios)",
        x_label="ring_size",
        xs=[float(m) for m in ring_sizes],
        series={"measured_max_loop": measured, "bound": bounds},
    )
    violations = [
        (m, got, bound)
        for m, got, bound in zip(ring_sizes, measured, bounds)
        if got > bound + slack
    ]
    figure.checks.append(
        ObservationCheck(
            name="theory-bound-respected",
            holds=not violations,
            detail=(
                "all measured loop lifetimes within (m-1)*M + slack"
                if not violations
                else f"violations at {violations}"
            ),
        )
    )
    return figure
