"""Extension study: the loop-vs-drop tradeoff of fast flushing (§5).

The paper's discussion (not plotted there): Ghost Flushing wins on looping
by removing reachability information faster than it restores it, so nodes
drop packets they could have delivered over stale-but-working paths.  The
same holds, even more strongly, for the Assertion approach.  Measured on
Tlong events, where delivery remains possible throughout.
"""

from _support import RESULTS_DIR

from repro.bgp import VARIANT_NAMES
from repro.experiments import RunSettings, tlong_bclique, tlong_internet
from repro.experiments.figures.tradeoff import (
    packet_fate_breakdown,
    render_fate_table,
)


def _save_and_print(name, table):
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)


def test_tradeoff_bclique_tlong(benchmark):
    breakdowns = benchmark.pedantic(
        lambda: packet_fate_breakdown(
            lambda seed: tlong_bclique(8),
            VARIANT_NAMES,
            mrai=30.0,
            seeds=(0, 1, 2),
            settings=RunSettings(),
        ),
        rounds=1,
        iterations=1,
    )
    _save_and_print(
        "tradeoff_bclique",
        render_fate_table(breakdowns, "Packet fates, Tlong B-Clique-8"),
    )
    standard, flushing = breakdowns["standard"], breakdowns["ghost-flushing"]
    # The tradeoff: far less looping, but notably more no-route drops.
    assert flushing.looped_ratio < 0.5 * standard.looped_ratio
    assert flushing.no_route_ratio > 1.5 * standard.no_route_ratio


def test_tradeoff_internet_tlong(benchmark):
    breakdowns = benchmark.pedantic(
        lambda: packet_fate_breakdown(
            lambda seed: tlong_internet(48, seed=seed),
            VARIANT_NAMES,
            mrai=30.0,
            seeds=(0, 1, 2),
            settings=RunSettings(),
        ),
        rounds=1,
        iterations=1,
    )
    _save_and_print(
        "tradeoff_internet",
        render_fate_table(breakdowns, "Packet fates, Tlong internet-48"),
    )
    standard, flushing = breakdowns["standard"], breakdowns["ghost-flushing"]
    assert flushing.looped_ratio < 0.5 * standard.looped_ratio
    assert flushing.no_route_ratio > 1.5 * standard.no_route_ratio
