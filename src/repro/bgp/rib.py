"""The three BGP routing information bases.

* :class:`AdjRibIn` — per-neighbor copies of "the most recent paths received
  from each of its neighbors" (paper §3); this is what path exploration
  walks through after a failure.
* :class:`LocRib` — the selected best route per prefix.
* :class:`AdjRibOut` — what was last *sent* to each neighbor, used both to
  suppress duplicate advertisements ("the route to each destination is
  advertised only once; subsequent updates are sent only upon route
  changes") and as the reference point for Ghost Flushing's
  "changed to a longer path" test.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from .messages import Prefix
from .path import AsPath
from .policy import RoutingPolicy
from .route import Route, intern_route

PreferenceKey = Callable[[Route], object]
"""A total-order key over routes; smaller wins (see
:meth:`repro.bgp.policy.RoutingPolicy.preference_key`)."""

#: Per-neighbor stored state: (path, next_hop, local_pref).  Everything a
#: candidate route carries except its prefix — materialized back into an
#: interned :class:`Route` on read.
_Stored = Tuple[AsPath, Optional[int], int]


class _StateGroup:
    """One per-prefix candidate set, shared by every prefix whose state is
    identical (copy-on-write: the first diverging mutation splits)."""

    __slots__ = ("routes", "ranked", "members", "sig")

    def __init__(
        self,
        routes: Dict[int, _Stored],
        ranked: Optional[List[Tuple[object, int]]],
        sig: Optional[Tuple],
    ) -> None:
        self.routes = routes
        #: Sorted [(preference key, neighbor), ...] — None when unranked.
        self.ranked = ranked
        self.members = 1
        #: Cached sharing signature; None when sharing is disabled.
        self.sig = sig


class AdjRibIn:
    """Routes received from neighbors, keyed ``(neighbor, prefix)``.

    When constructed with a ``preference_key`` the RIB additionally keeps an
    **incremental ranking** per prefix: ``(key, neighbor)`` entries held
    sorted across mutations, so the decision process reads its winner off
    the front instead of re-scanning and re-keying every candidate on every
    UPDATE.  Only the changed peer's entry is re-ranked (one removal plus
    one bisect insertion).  The ranking's tie-break is the neighbor id,
    ascending — exactly the order :meth:`candidates` yields — so the cached
    winner is always the route the naive full scan would pick
    (:meth:`repro.bgp.decision.DecisionProcess.select_naive` cross-checks
    this under ``--sanitize``).

    Storage is **structurally shared across prefixes**: each prefix points
    at a :class:`_StateGroup` holding its candidate set (per-neighbor
    ``(path, next_hop, local_pref)`` plus the ranking), and prefixes whose
    candidate sets are identical share one group.  At routing-table scale
    most prefixes march through the same announcement sequence, so a
    10k-prefix Adj-RIB-In collapses to a handful of live groups.  A
    mutation on a shared group copies it first (copy-on-write) and then
    re-merges with any existing group its new signature matches.  Stored
    routes are materialized on read through the :func:`~repro.bgp.route.
    intern_route` table, so reads hand back the canonical shared instances
    (``learned_at`` is normalized to ``0.0`` — it is diagnostics-only).

    Sharing is enabled only when the preference key is known to be
    **prefix-independent** — the base
    :meth:`~repro.bgp.policy.RoutingPolicy.preference_key` (which every
    shipped policy inherits) or no key at all.  A custom override might
    rank by prefix, so it degrades to one group per prefix, same public
    behavior.
    """

    def __init__(self, preference_key: Optional[PreferenceKey] = None) -> None:
        self._key = preference_key
        self._share = (
            preference_key is None
            or getattr(preference_key, "__func__", None)
            is RoutingPolicy.preference_key
        )
        # prefix -> its (possibly shared) state group.
        self._groups: Dict[Prefix, _StateGroup] = {}
        # signature -> the group holding that exact candidate set.
        self._shared: Dict[Tuple, _StateGroup] = {}
        # neighbor -> prefixes it currently contributes a route for
        # (reverse index: drop_neighbor and deterministic iteration).
        self._neighbor_prefixes: Dict[int, Set[Prefix]] = {}

    @property
    def ranked(self) -> bool:
        """True when the incremental per-prefix ranking is maintained."""
        return self._key is not None

    # ------------------------------------------------------------------
    # Group plumbing
    # ------------------------------------------------------------------

    def _materialize(self, prefix: Prefix, neighbor: int, stored: _Stored) -> Route:
        del neighbor  # identity lives in stored[1] (the next hop)
        path, next_hop, local_pref = stored
        return intern_route(prefix, path, next_hop, local_pref)

    def _key_of(self, prefix: Prefix, neighbor: int, stored: _Stored) -> object:
        return self._key(self._materialize(prefix, neighbor, stored))

    @staticmethod
    def _signature(routes: Dict[int, _Stored]) -> Tuple:
        return tuple(sorted(routes.items()))

    def _detach(self, group: Optional[_StateGroup]) -> None:
        """Drop one membership; unregister the group when it empties."""
        if group is None:
            return
        group.members -= 1
        if group.members == 0 and group.sig is not None:
            del self._shared[group.sig]

    def _writable(
        self, prefix: Prefix, group: Optional[_StateGroup]
    ) -> _StateGroup:
        """A group for ``prefix`` that is safe to mutate in place.

        Sole-member groups are unregistered from the sharing table (the
        caller re-registers under the post-mutation signature); shared
        groups are split copy-on-write.
        """
        if group is None:
            fresh = _StateGroup({}, [] if self._key is not None else None, None)
            self._groups[prefix] = fresh
            return fresh
        if group.members == 1:
            if group.sig is not None:
                del self._shared[group.sig]
                group.sig = None
            return group
        group.members -= 1
        split = _StateGroup(
            dict(group.routes),
            list(group.ranked) if group.ranked is not None else None,
            None,
        )
        self._groups[prefix] = split
        return split

    def _register(self, group: _StateGroup) -> None:
        """Cache the (sole-member) group's signature for future sharing."""
        if self._share:
            sig = self._signature(group.routes)
            group.sig = sig
            self._shared[sig] = group

    def _adopt(
        self, prefix: Prefix, group: Optional[_StateGroup], target: _StateGroup
    ) -> None:
        """Repoint ``prefix`` at an existing identical group."""
        self._detach(group)
        target.members += 1
        self._groups[prefix] = target

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def put(self, neighbor: int, route: Route) -> None:
        """Store/replace the route from ``neighbor`` for ``route.prefix``."""
        prefix = route.prefix
        stored: _Stored = (route.path, route.next_hop, route.local_pref)
        group = self._groups.get(prefix)
        old = group.routes.get(neighbor) if group is not None else None
        if old == stored:
            return  # value-identical replacement: state unchanged
        self._neighbor_prefixes.setdefault(neighbor, set()).add(prefix)
        if self._share:
            routes = dict(group.routes) if group is not None else {}
            routes[neighbor] = stored
            target = self._shared.get(self._signature(routes))
            if target is not None:
                self._adopt(prefix, group, target)
                return
        group = self._writable(prefix, group)
        group.routes[neighbor] = stored
        if group.ranked is not None:
            if old is not None:
                group.ranked.remove(
                    (self._key_of(prefix, neighbor, old), neighbor)
                )
            insort(group.ranked, (self._key(route), neighbor))
        self._register(group)

    def remove(self, neighbor: int, prefix: Prefix) -> Optional[Route]:
        """Drop and return the stored route, or ``None`` if absent."""
        group = self._groups.get(prefix)
        stored = group.routes.get(neighbor) if group is not None else None
        if stored is None:
            return None
        result = self._materialize(prefix, neighbor, stored)
        self._discard(neighbor, prefix, group, stored)
        prefixes = self._neighbor_prefixes.get(neighbor)
        if prefixes is not None:
            prefixes.discard(prefix)
            if not prefixes:
                del self._neighbor_prefixes[neighbor]
        return result

    def _discard(
        self, neighbor: int, prefix: Prefix, group: _StateGroup, stored: _Stored
    ) -> None:
        """Remove ``neighbor``'s contribution (reverse index untouched)."""
        if len(group.routes) == 1:
            self._detach(group)
            del self._groups[prefix]
            return
        if self._share:
            routes = dict(group.routes)
            del routes[neighbor]
            target = self._shared.get(self._signature(routes))
            if target is not None:
                self._adopt(prefix, group, target)
                return
        group = self._writable(prefix, group)
        del group.routes[neighbor]
        if group.ranked is not None:
            group.ranked.remove((self._key_of(prefix, neighbor, stored), neighbor))
        self._register(group)

    def drop_neighbor(self, neighbor: int) -> List[Prefix]:
        """Forget everything from ``neighbor`` (session down).

        Returns the prefixes that lost a candidate, so the caller can re-run
        the decision process for exactly those.
        """
        affected = sorted(self._neighbor_prefixes.pop(neighbor, ()))
        for prefix in affected:
            group = self._groups[prefix]
            self._discard(neighbor, prefix, group, group.routes[neighbor])
        return affected

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, neighbor: int, prefix: Prefix) -> Optional[Route]:
        group = self._groups.get(prefix)
        if group is None:
            return None
        stored = group.routes.get(neighbor)
        if stored is None:
            return None
        return self._materialize(prefix, neighbor, stored)

    def best(
        self,
        prefix: Prefix,
        usable: Optional[Callable[[Route], bool]] = None,
    ) -> Optional[Route]:
        """The highest-ranked (usable) route for ``prefix``, or ``None``.

        Only available on a ranked RIB; O(1) without a ``usable`` filter,
        O(suppressed prefix-candidates) with one.
        """
        group = self._groups.get(prefix)
        if group is None or not group.ranked:
            return None
        if usable is None:
            neighbor = group.ranked[0][1]
            return self._materialize(prefix, neighbor, group.routes[neighbor])
        for _key, neighbor in group.ranked:
            route = self._materialize(prefix, neighbor, group.routes[neighbor])
            if usable(route):
                return route
        return None

    def candidates(self, prefix: Prefix) -> List[Route]:
        """All stored routes for ``prefix``, neighbor-id order (deterministic)."""
        group = self._groups.get(prefix)
        if group is None:
            return []
        return [
            self._materialize(prefix, neighbor, group.routes[neighbor])
            for neighbor in sorted(group.routes)
        ]

    def neighbors_with(self, prefix: Prefix) -> List[int]:
        """Neighbors currently contributing a route for ``prefix``."""
        group = self._groups.get(prefix)
        return sorted(group.routes) if group is not None else []

    def entries(self) -> Iterator[Tuple[int, Route]]:
        """All ``(neighbor, route)`` pairs, deterministic order."""
        for neighbor in sorted(self._neighbor_prefixes):
            for prefix in sorted(self._neighbor_prefixes[neighbor]):
                group = self._groups[prefix]
                yield neighbor, self._materialize(
                    prefix, neighbor, group.routes[neighbor]
                )

    def __len__(self) -> int:
        return sum(len(v) for v in self._neighbor_prefixes.values())

    def group_count(self) -> int:
        """Distinct live state groups (diagnostics: sharing effectiveness)."""
        return len({id(g) for g in self._groups.values()})


class LocRib:
    """The best route per prefix, as selected by the decision process."""

    def __init__(self) -> None:
        self._best: Dict[Prefix, Route] = {}

    def get(self, prefix: Prefix) -> Optional[Route]:
        return self._best.get(prefix)

    def set(self, route: Route) -> None:
        self._best[route.prefix] = route

    def remove(self, prefix: Prefix) -> Optional[Route]:
        return self._best.pop(prefix, None)

    def prefixes(self) -> List[Prefix]:
        return sorted(self._best)

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._best


@dataclass(frozen=True, slots=True)
class SentState:
    """What a speaker last told one neighbor about one prefix.

    ``path`` is the advertised path (speaker's AS at the head) or ``None``
    after a withdrawal / before any advertisement.
    """

    path: Optional[AsPath]

    @property
    def is_withdrawn(self) -> bool:
        return self.path is None


NOTHING_SENT = SentState(path=None)


class AdjRibOut:
    """Last advertisement per ``(neighbor, prefix)``."""

    def __init__(self) -> None:
        self._sent: Dict[int, Dict[Prefix, SentState]] = {}

    def last_sent(self, neighbor: int, prefix: Prefix) -> SentState:
        """What the neighbor currently believes we advertised.

        Before any message this is :data:`NOTHING_SENT`, which compares equal
        to the state after an explicit withdrawal — correctly so, since in
        both cases the neighbor holds no route from us.
        """
        return self._sent.get(neighbor, {}).get(prefix, NOTHING_SENT)

    def record_announcement(self, neighbor: int, prefix: Prefix, path: AsPath) -> None:
        self._sent.setdefault(neighbor, {})[prefix] = SentState(path=path)

    def record_withdrawal(self, neighbor: int, prefix: Prefix) -> None:
        self._sent.setdefault(neighbor, {})[prefix] = SentState(path=None)

    def drop_neighbor(self, neighbor: int) -> None:
        """Forget the neighbor entirely (session down)."""
        self._sent.pop(neighbor, None)

    def advertised_prefixes(self, neighbor: int) -> List[Prefix]:
        """Prefixes for which the neighbor holds a live advertisement."""
        by_prefix = self._sent.get(neighbor, {})
        return sorted(p for p, state in by_prefix.items() if not state.is_withdrawn)
