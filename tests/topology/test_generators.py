"""Unit tests for repro.topology.generators."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    b_clique,
    binary_tree,
    chain,
    clique,
    destination_for,
    grid,
    named_generator,
    ring,
    ring_with_core,
    star,
)


class TestClique:
    @pytest.mark.parametrize("n", [2, 5, 10])
    def test_full_mesh(self, n):
        topo = clique(n)
        assert topo.num_nodes == n
        assert topo.num_edges == n * (n - 1) // 2
        assert all(topo.degree(node) == n - 1 for node in topo.nodes)

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            clique(1)


class TestBClique:
    def test_structure_matches_paper(self):
        n = 4
        topo = b_clique(n)
        # 2n nodes: chain 0..n-1, clique n..2n-1, plus the two bridges.
        assert topo.num_nodes == 2 * n
        assert topo.has_edge(0, n)            # edge-to-core link
        assert topo.has_edge(n - 1, 2 * n - 1)  # chain-to-core backup
        for i in range(n - 1):
            assert topo.has_edge(i, i + 1)    # the chain
        for u in range(n, 2 * n):
            for v in range(u + 1, 2 * n):
                assert topo.has_edge(u, v)    # the clique

    def test_edge_count(self):
        n = 5
        topo = b_clique(n)
        expected = (n - 1) + n * (n - 1) // 2 + 2
        assert topo.num_edges == expected

    def test_failing_0_n_keeps_graph_connected(self):
        topo = b_clique(5)
        assert not topo.is_cut_edge(0, 5)

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            b_clique(1)


class TestSimpleShapes:
    def test_chain(self):
        topo = chain(4)
        assert topo.num_edges == 3
        assert topo.degree(0) == topo.degree(3) == 1

    def test_ring(self):
        topo = ring(5)
        assert topo.num_edges == 5
        assert all(topo.degree(node) == 2 for node in topo.nodes)

    def test_ring_minimum_size(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_star(self):
        topo = star(6)
        assert topo.degree(0) == 5
        assert all(topo.degree(leaf) == 1 for leaf in range(1, 6))

    def test_binary_tree(self):
        topo = binary_tree(3)
        assert topo.num_nodes == 15
        assert topo.num_edges == 14
        assert topo.is_connected()

    def test_grid(self):
        topo = grid(3, 4)
        assert topo.num_nodes == 12
        assert topo.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert topo.is_connected()

    def test_grid_too_small(self):
        with pytest.raises(TopologyError):
            grid(1, 1)


class TestRingWithCore:
    def test_structure(self):
        topo = ring_with_core(4, backup_len=2)
        # ring 0..3, destination 4, backup chain 5-6 from node 1 to 4.
        assert topo.has_edge(0, 4)
        assert topo.has_edge(1, 5)
        assert topo.has_edge(5, 6)
        assert topo.has_edge(6, 4)
        assert not topo.is_cut_edge(0, 4)

    def test_zero_backup_connects_node_1_directly(self):
        topo = ring_with_core(3, backup_len=0)
        assert topo.has_edge(1, 3)

    def test_bad_params(self):
        with pytest.raises(TopologyError):
            ring_with_core(2)
        with pytest.raises(TopologyError):
            ring_with_core(4, backup_len=-1)


class TestRegistry:
    def test_known_names(self):
        assert named_generator("clique") is clique
        assert named_generator("b-clique") is b_clique
        assert named_generator("bclique") is b_clique

    def test_unknown_name(self):
        with pytest.raises(TopologyError, match="unknown topology"):
            named_generator("torus")

    def test_destination_convention(self):
        assert destination_for(clique(4)) == 0

    def test_destination_missing_node_zero(self):
        from repro.topology import Topology

        topo = Topology.from_edges([(1, 2)])
        with pytest.raises(TopologyError):
            destination_for(topo)
