#!/usr/bin/env python
"""Quickstart: one BGP Tdown experiment, the paper's four metrics.

Runs the classic scenario — a clique of ASes whose destination becomes
unreachable — with standard BGP (MRAI 30 s), then prints the §4.2 metrics:
convergence time, overall looping duration, TTL exhaustions, and the
looping ratio.

Usage::

    python examples/quickstart.py [clique_size] [mrai]
"""

import sys

from repro import BgpConfig, RunSettings, run_experiment, tdown_clique


def main() -> None:
    clique_size = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    mrai = float(sys.argv[2]) if len(sys.argv) > 2 else 30.0

    scenario = tdown_clique(clique_size)
    config = BgpConfig.standard(mrai)
    print(f"Running {scenario.name} with {config.variant_name} BGP, MRAI={mrai}s ...")

    run = run_experiment(scenario, config, settings=RunSettings(), seed=42)
    result = run.result

    print(f"\n  failure injected at t={run.failure_time:.1f}s (after warm-up)")
    print(f"  convergence time        : {result.convergence_time:8.1f} s")
    print(f"  overall looping duration: {result.overall_looping_duration:8.1f} s")
    print(f"  TTL exhaustions         : {result.ttl_exhaustions:8d}")
    print(f"  packets sent            : {result.packets_sent:8d}")
    print(f"  looping ratio           : {result.looping_ratio:8.1%}")
    print(f"  update messages sent    : {result.convergence.update_count:8d}")
    print(f"  distinct loops observed : {result.distinct_loop_count:8d}")

    if result.loop_intervals:
        longest = max(result.loop_intervals, key=lambda i: i.duration)
        print(
            f"\n  longest-lived loop: {longest.cycle} "
            f"alive for {longest.duration:.1f}s"
        )
    print(
        "\nThe key takeaway (paper Observation 1): looping persists for "
        "almost the whole convergence period."
    )


if __name__ == "__main__":
    main()
