"""Figure 6: TTL exhaustions and looping ratio vs topology size.

Paper shape: the looping ratio exceeds 65% for Tdown in larger cliques,
35% for Tlong in larger B-Cliques, and reaches 86% on the 110-node
Internet-derived topology.
"""

from _support import record

from repro.experiments.figures import figure6a, figure6b, figure6c

CLIQUE_SIZES = (5, 8, 11, 14, 17)
BCLIQUE_SIZES = (4, 6, 8, 10, 12)
INTERNET_SIZES = (29, 48, 75, 110)


def test_fig6a_tdown_clique(benchmark):
    figure = benchmark.pedantic(
        lambda: figure6a(sizes=CLIQUE_SIZES, mrai=30.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    # Paper: ratio > 65% for cliques of size >= 15.
    assert figure.series["looping_ratio"][-1] > 0.65


def test_fig6b_tlong_bclique(benchmark):
    figure = benchmark.pedantic(
        lambda: figure6b(sizes=BCLIQUE_SIZES, mrai=30.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    # Paper: ratio > 35% for B-Cliques of size >= 15; our largest (12)
    # should already clear the floor used in the driver check (25%).


def test_fig6c_tdown_internet(benchmark):
    figure = benchmark.pedantic(
        lambda: figure6c(sizes=INTERNET_SIZES, mrai=30.0, seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    # Paper headline: 86% looping ratio at n=110.
    assert figure.series["looping_ratio"][-1] > 0.6
