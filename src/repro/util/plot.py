"""Terminal-friendly ASCII charts.

Small, dependency-free scatter/line rendering used by the CLI's
``figure --plot`` flag and the examples.  One marker character per series,
shared axes, a y-axis scale on the left and the x range underneath.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import AnalysisError

MARKERS = "*o+x#@%&"


def ascii_chart(
    xs: Sequence[float],
    series: Sequence[Tuple[str, Sequence[float]]],
    width: int = 60,
    height: int = 14,
    title: Optional[str] = None,
) -> str:
    """Render one or more y-series against shared x values.

    >>> print(ascii_chart([0, 1, 2], [("y", [0.0, 1.0, 2.0])], width=9,
    ...                   height=3))  # doctest: +SKIP
    """
    if not xs:
        raise AnalysisError("nothing to plot: empty x-axis")
    if len(series) > len(MARKERS):
        raise AnalysisError(f"at most {len(MARKERS)} series supported")
    if width < 8 or height < 3:
        raise AnalysisError("chart must be at least 8x3 characters")
    for name, values in series:
        if len(values) != len(xs):
            raise AnalysisError(
                f"series {name!r} has {len(values)} points for {len(xs)} xs"
            )

    all_y = [v for _name, values in series for v in values if v == v]
    if not all_y:
        raise AnalysisError("no finite values to plot")
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0  # flat series: give the band some height
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        col = round((x - x_min) / x_span * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        return (height - 1 - row, col)

    for index, (name, values) in enumerate(series):
        marker = MARKERS[index]
        for x, y in zip(xs, values):
            if y != y:  # NaN
                continue
            row, col = cell(x, y)
            grid[row][col] = marker

    y_labels = [_fmt(y_max), _fmt((y_max + y_min) / 2), _fmt(y_min)]
    label_width = max(len(label) for label in y_labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_labels[0]
        elif row_index == height // 2:
            label = y_labels[1]
        elif row_index == height - 1:
            label = y_labels[2]
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}")
    lines.append(f"{' ' * label_width} +{'-' * width}")
    x_left, x_right = _fmt(x_min), _fmt(x_max)
    padding = width - len(x_left) - len(x_right)
    lines.append(f"{' ' * label_width}  {x_left}{' ' * max(1, padding)}{x_right}")
    legend = "   ".join(
        f"{MARKERS[i]} {name}" for i, (name, _values) in enumerate(series)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    """Compact number formatting for axis labels."""
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 1000:
        return f"{value:.3g}"
    return f"{value:.2f}"
