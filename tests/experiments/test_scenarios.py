"""Unit tests for scenario construction."""

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    EventKind,
    Scenario,
    custom_tdown,
    custom_tlong,
    tcrash_clique,
    tdown_clique,
    tdown_internet,
    tflap_bclique,
    tlong_bclique,
    tlong_internet,
    treset_clique,
)
from repro.topology import chain, clique


class TestValidation:
    def test_destination_must_exist(self):
        with pytest.raises(ConfigError):
            Scenario(name="x", topology=clique(3), destination=9, event=EventKind.TDOWN)

    def test_tlong_requires_failed_link(self):
        with pytest.raises(ConfigError, match="must name the link"):
            Scenario(name="x", topology=clique(3), destination=0, event=EventKind.TLONG)

    def test_tlong_link_must_exist(self):
        with pytest.raises(ConfigError):
            Scenario(
                name="x",
                topology=clique(3),
                destination=0,
                event=EventKind.TLONG,
                failed_link=(0, 9),
            )

    def test_tlong_rejects_cut_edges(self):
        with pytest.raises(ConfigError, match="cut edge"):
            custom_tlong(chain(3), destination=0, failed_link=(0, 1))

    def test_tdown_rejects_failed_link(self):
        with pytest.raises(ConfigError):
            Scenario(
                name="x",
                topology=clique(3),
                destination=0,
                event=EventKind.TDOWN,
                failed_link=(0, 1),
            )


class TestFamilies:
    def test_tdown_clique(self):
        scenario = tdown_clique(6)
        assert scenario.event is EventKind.TDOWN
        assert scenario.destination == 0
        assert scenario.topology.num_nodes == 6
        assert scenario.source_nodes == [1, 2, 3, 4, 5]

    def test_tlong_bclique_fails_edge_to_core_link(self):
        scenario = tlong_bclique(5)
        assert scenario.event is EventKind.TLONG
        assert scenario.failed_link == (0, 5)
        assert scenario.destination == 0

    def test_tdown_internet_destination_is_low_degree(self):
        scenario = tdown_internet(29, seed=1)
        topo = scenario.topology
        assert topo.degree(scenario.destination) == min(
            topo.degree(n) for n in topo.nodes
        )

    def test_tlong_internet_is_well_formed(self):
        scenario = tlong_internet(29, seed=1)
        assert scenario.event is EventKind.TLONG
        u, v = scenario.failed_link
        assert u == scenario.destination
        assert scenario.topology.has_edge(u, v)
        assert not scenario.topology.is_cut_edge(u, v)

    def test_tlong_internet_deterministic_per_seed(self):
        a = tlong_internet(29, seed=5)
        b = tlong_internet(29, seed=5)
        assert a.destination == b.destination
        assert a.failed_link == b.failed_link

    def test_custom_tdown(self):
        scenario = custom_tdown(chain(4), destination=3)
        assert scenario.event is EventKind.TDOWN
        assert scenario.destination == 3


class TestChurnScenarios:
    def test_treset_clique_targets_a_session(self):
        scenario = treset_clique(5)
        assert scenario.event is EventKind.TRESET
        assert scenario.failed_link == (0, 1)
        assert scenario.topology.has_edge(0, 1)

    def test_treset_allows_cut_edges(self):
        # A session reset never takes the link down, so a bridge is fine.
        scenario = Scenario(
            name="x",
            topology=chain(3),
            destination=0,
            event=EventKind.TRESET,
            failed_link=(0, 1),
        )
        assert scenario.failed_link == (0, 1)

    def test_treset_requires_a_link(self):
        with pytest.raises(ConfigError, match="must name the link"):
            Scenario(
                name="x", topology=clique(3), destination=0, event=EventKind.TRESET
            )

    def test_tcrash_clique_defaults(self):
        scenario = tcrash_clique(5)
        assert scenario.event is EventKind.TCRASH
        assert scenario.crash_node == 1
        assert scenario.restart_after == pytest.approx(30.0)

    def test_tcrash_requires_crash_node(self):
        with pytest.raises(ConfigError, match="must name the node"):
            Scenario(
                name="x", topology=clique(3), destination=0, event=EventKind.TCRASH
            )

    def test_tcrash_rejects_crashing_the_destination(self):
        with pytest.raises(ConfigError, match="Tdown"):
            tcrash_clique(4, crash=0)

    def test_tcrash_rejects_nonpositive_restart(self):
        with pytest.raises(ConfigError, match="restart_after"):
            tcrash_clique(4, restart_after=0.0)

    def test_crash_fields_rejected_on_other_events(self):
        with pytest.raises(ConfigError, match="crash fields"):
            Scenario(
                name="x",
                topology=clique(3),
                destination=0,
                event=EventKind.TDOWN,
                crash_node=1,
            )

    def test_tflap_bclique_is_well_formed(self):
        scenario = tflap_bclique(4, period=10.0, count=2)
        assert scenario.event is EventKind.TFLAP
        assert scenario.failed_link == (0, 4)
        assert scenario.flap_period == pytest.approx(10.0)
        assert scenario.flap_count == 2

    def test_tflap_requires_positive_period(self):
        with pytest.raises(ConfigError, match="flap_period"):
            tflap_bclique(4, period=0.0)

    def test_flap_fields_rejected_on_other_events(self):
        with pytest.raises(ConfigError, match="flap period"):
            Scenario(
                name="x",
                topology=clique(3),
                destination=0,
                event=EventKind.TLONG,
                failed_link=(0, 1),
                flap_period=5.0,
            )
