"""Route-flap damping (RFC 2439).

Damping penalizes unstable routes: every flap (withdrawal, or announcement
that changes the path) adds to a per-(peer, prefix) penalty that decays
exponentially with a configured half-life; above the suppress threshold the
peer's route is ignored by the decision process until the penalty decays
below the reuse threshold.

Included here both as a standard BGP mechanism and as a known *pathology*:
Mao et al. (SIGCOMM 2002) showed that the path exploration following a
single topology change looks like flapping to a damper, so damping can
suppress perfectly good routes and significantly lengthen convergence —
the ``bench_damping`` benchmark reproduces that interaction on this
simulator.

Implementation notes:

* Penalty is stored as ``(value, timestamp)`` and decayed lazily:
  ``value × 2^(-(now - timestamp) / half_life)``.
* While suppressed, a reuse check is scheduled for the exact instant the
  penalty will cross the reuse threshold, so the scheduler still quiesces.
* Penalties are capped so suppression can never exceed
  ``max_suppress_time``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..engine import Scheduler, Timer
from ..errors import ConfigError
from .messages import Prefix


@dataclass(frozen=True)
class DampingConfig:
    """RFC 2439 parameters (defaults are the RFC's examples).

    The paper-scale simulations use much shorter half-lives than the
    real-world 15 minutes so damping dynamics fit inside one experiment.
    """

    withdrawal_penalty: float = 1000.0
    attribute_change_penalty: float = 500.0
    suppress_threshold: float = 2000.0
    reuse_threshold: float = 750.0
    half_life: float = 900.0
    max_suppress_time: float = 3600.0

    def __post_init__(self) -> None:
        if min(self.withdrawal_penalty, self.attribute_change_penalty) < 0:
            raise ConfigError("penalties must be >= 0")
        if not 0 < self.reuse_threshold < self.suppress_threshold:
            raise ConfigError(
                "must satisfy 0 < reuse_threshold < suppress_threshold, got "
                f"{self.reuse_threshold} vs {self.suppress_threshold}"
            )
        if self.half_life <= 0:
            raise ConfigError(f"half_life must be positive, got {self.half_life}")
        if self.max_suppress_time <= 0:
            raise ConfigError("max_suppress_time must be positive")

    @property
    def penalty_ceiling(self) -> float:
        """Cap implementing max_suppress_time: the penalty from which decay
        to the reuse threshold takes exactly that long."""
        return self.reuse_threshold * 2 ** (self.max_suppress_time / self.half_life)


ReuseCallback = Callable[[int, Prefix], None]


class RouteFlapDamper:
    """Per-(peer, prefix) flap accounting for one speaker.

    The speaker reports flaps via :meth:`record_withdrawal` /
    :meth:`record_change`, consults :meth:`is_suppressed` before using a
    peer's route, and receives ``on_reuse(peer, prefix)`` when a suppressed
    pair becomes usable again.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        config: DampingConfig,
        on_reuse: ReuseCallback,
    ) -> None:
        self._scheduler = scheduler
        self._config = config
        self._on_reuse = on_reuse
        self._penalty: Dict[Tuple[int, Prefix], Tuple[float, float]] = {}
        self._suppressed: Dict[Tuple[int, Prefix], Timer] = {}
        self.suppressions = 0
        self.reuses = 0

    # ------------------------------------------------------------------

    def current_penalty(self, peer: int, prefix: Prefix) -> float:
        """The decayed penalty right now."""
        entry = self._penalty.get((peer, prefix))
        if entry is None:
            return 0.0
        value, stamp = entry
        elapsed = self._scheduler.now - stamp
        return value * 2 ** (-elapsed / self._config.half_life)

    def is_suppressed(self, peer: int, prefix: Prefix) -> bool:
        """True while the peer's route for the prefix must not be used."""
        return (peer, prefix) in self._suppressed

    @property
    def suppressed_count(self) -> int:
        return len(self._suppressed)

    # ------------------------------------------------------------------

    def record_withdrawal(self, peer: int, prefix: Prefix) -> None:
        """The peer withdrew (or implicitly invalidated) its route."""
        self._add_penalty(peer, prefix, self._config.withdrawal_penalty)

    def record_change(self, peer: int, prefix: Prefix) -> None:
        """The peer re-announced with different attributes (path change)."""
        self._add_penalty(peer, prefix, self._config.attribute_change_penalty)

    def _add_penalty(self, peer: int, prefix: Prefix, amount: float) -> None:
        key = (peer, prefix)
        penalty = min(
            self.current_penalty(peer, prefix) + amount,
            self._config.penalty_ceiling,
        )
        self._penalty[key] = (penalty, self._scheduler.now)
        if penalty >= self._config.suppress_threshold and key not in self._suppressed:
            self._suppress(key, penalty)
        elif key in self._suppressed:
            # Already suppressed: the reuse instant moved; re-arm.
            self._suppressed[key].restart(self._reuse_delay(penalty))

    def _suppress(self, key: Tuple[int, Prefix], penalty: float) -> None:
        self.suppressions += 1
        peer, prefix = key
        timer = Timer(
            self._scheduler,
            callback=lambda: self._reuse(key),
            name=f"damping-reuse:{peer}:{prefix}",
        )
        timer.start(self._reuse_delay(penalty))
        self._suppressed[key] = timer

    def _reuse_delay(self, penalty: float) -> float:
        """Seconds until ``penalty`` decays to the reuse threshold."""
        ratio = penalty / self._config.reuse_threshold
        if ratio <= 1.0:
            return 0.0
        return self._config.half_life * math.log2(ratio)

    def _reuse(self, key: Tuple[int, Prefix]) -> None:
        self._suppressed.pop(key, None)
        self.reuses += 1
        peer, prefix = key
        self._on_reuse(peer, prefix)

    def cancel_peer(self, peer: int) -> None:
        """Forget all damping state toward a dead peer."""
        for key in [k for k in self._suppressed if k[0] == peer]:
            self._suppressed.pop(key).cancel()
        for key in [k for k in self._penalty if k[0] == peer]:
            del self._penalty[key]
