"""Crash-safe sweep journal: per-trial records, CRC-verified, resumable.

PR 3's ``checkpointed_sweep`` lived in ``benchmarks/_support.py`` as a
benchmarks-only helper whose journal could be corrupted by anything
sharper than a polite Ctrl-C.  This module promotes it into the library
with real durability semantics, because the ROADMAP's always-on sweep
service needs the journal to be the system of record across restarts:

* **per-record CRC-32** — every JSONL line carries a checksum over its
  canonical record payload, so a torn write, a flipped bit, or a
  half-synced page is *detected* on resume instead of silently parsed
  into wrong statistics;
* **append + flush + fsync** per record — a completed trial survives the
  very next SIGKILL;
* **atomic checkpoints** — :meth:`SweepJournal.checkpoint` rewrites the
  journal through a temp file + ``os.replace`` rename, compacting
  duplicate ``(x, seed)`` records (last write wins) and dropping corrupt
  ones, so the on-disk file is always either the old complete journal or
  the new complete journal, never a halfway state;
* **recovery on load** — a truncated final line (the crash arrived
  mid-write) and CRC-mismatched records are skipped and *counted*
  (:class:`JournalRecovery`), never fatal;
* **single-writer locking** — the first write acquires an exclusive
  ``flock`` on a sidecar ``<path>.lock`` file; a second writer opening
  the same journal path fails fast with :class:`~repro.errors.
  JournalError` instead of interleaving frames (readers never lock);
* **signal-safe finalization** — :meth:`SweepJournal.guarded` installs
  SIGTERM/SIGINT handlers that write a final checkpoint before the
  default behavior proceeds, so a politely-terminated sweep leaves a
  compacted journal behind.

Records are *per trial* (``(x, seed)``-keyed), not per point: a resumed
sweep re-runs only the individual trials that never finished, even when
a point's seeds were half done.

The CRC line framing is generic (:func:`frame_line` / :func:`unframe_line`)
and shared with :mod:`repro.service.queue`, whose durable job queue rides
the same format — one framing, one recovery taxonomy, for every durable
JSONL file the system writes.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - always present on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback: no locking
    fcntl = None  # type: ignore[assignment]

from ..errors import AnalysisError, JournalError
from ..util.stats import mean

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from .resilience import ResiliencePolicy
    from .sweep import SweepPoint

#: Journal line schema version, embedded in every record.
SCHEMA_VERSION = 1

Key = Tuple[float, int]


@dataclass(frozen=True)
class TrialRecord:
    """One finished trial reduced to journal-able plain data.

    ``status`` is ``"ok"``, ``"failed"``, or ``"timeout"``; ``metrics``
    is the successful trial's ``summary_row()`` (empty otherwise);
    ``error``/``kind`` preserve the failure message and exception class
    name for post-mortems; ``attempt`` is the retry provenance;
    ``digest`` is the trial's SHA-256 run fingerprint when the sweep ran
    with ``digests=True`` (empty otherwise) — the equivalence oracle a
    resumed service job is checked against.
    """

    x: float
    seed: int
    status: str
    attempt: int = 1
    metrics: Dict[str, float] = field(default_factory=dict)
    error: str = ""
    kind: str = ""
    digest: str = ""

    @property
    def key(self) -> Key:
        return (self.x, self.seed)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def payload(self) -> Dict:
        return {
            "schema": SCHEMA_VERSION,
            "x": self.x,
            "seed": self.seed,
            "status": self.status,
            "attempt": self.attempt,
            "metrics": dict(self.metrics),
            "error": self.error,
            "kind": self.kind,
            "digest": self.digest,
        }

    @classmethod
    def from_payload(cls, data: Dict) -> "TrialRecord":
        return cls(
            x=data["x"],
            seed=data["seed"],
            status=data["status"],
            attempt=data.get("attempt", 1),
            metrics=dict(data.get("metrics", {})),
            error=data.get("error", ""),
            kind=data.get("kind", ""),
            digest=data.get("digest", ""),
        )


def _canonical(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def frame_line(payload: Dict) -> str:
    """Wrap one JSON-able payload as a CRC-32-framed journal line.

    Generic over the payload schema: the trial journal and the service's
    durable job queue both write this frame, so both inherit the same
    torn-tail/corrupt-record recovery semantics.
    """
    body = _canonical(payload)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f'{{"crc":{crc},"record":{body}}}'


def unframe_line(line: str) -> Dict:
    """Verify and unwrap one CRC-framed line, raising
    :class:`~repro.errors.JournalError` on malformed JSON or a CRC
    mismatch."""
    try:
        wrapper = json.loads(line)
        crc = wrapper["crc"]
        body = wrapper["record"]
    except (json.JSONDecodeError, TypeError, KeyError) as exc:
        raise JournalError(f"malformed journal line: {exc}") from exc
    actual = zlib.crc32(_canonical(body).encode("utf-8")) & 0xFFFFFFFF
    if actual != crc:
        raise JournalError(
            f"journal record CRC mismatch (stored {crc}, computed {actual})"
        )
    if not isinstance(body, dict):
        raise JournalError(
            f"journal record payload must be an object, got {type(body).__name__}"
        )
    return body


def encode_record(record: TrialRecord) -> str:
    """One journal line: the record payload wrapped with its CRC-32."""
    return frame_line(record.payload())


def decode_record(line: str) -> TrialRecord:
    """Parse one journal line, raising :class:`JournalError` on any damage
    (malformed JSON, missing fields, CRC mismatch)."""
    body = unframe_line(line)
    try:
        return TrialRecord.from_payload(body)
    except (KeyError, TypeError) as exc:
        raise JournalError(f"journal record missing fields: {exc}") from exc


class WriterLock:
    """An exclusive, non-blocking ``flock`` on a sidecar ``.lock`` file.

    One durable file, one writer: the lock is acquired the moment a
    journal (or the service's job queue) first writes, and a second
    writer — another process *or* another handle in the same process —
    fails fast with :class:`~repro.errors.JournalError` instead of
    interleaving frames.  The sidecar (never the data file itself) is
    locked because checkpointing atomically replaces the data file's
    inode, which would silently drop a lock held on it.

    On platforms without ``fcntl`` the lock degrades to a no-op (the
    durability format stays valid; only the two-writer guard is lost).
    """

    def __init__(self, path) -> None:
        #: The data file this lock guards; the sidecar is ``<path>.lock``.
        self.path = Path(path)
        self.lock_path = self.path.with_suffix(self.path.suffix + ".lock")
        self._handle = None

    @property
    def held(self) -> bool:
        return self._handle is not None

    def acquire(self) -> None:
        """Take the exclusive lock, or raise :class:`JournalError` if any
        other writer (process or handle) already holds it."""
        if self._handle is not None or fcntl is None:
            return
        self.lock_path.parent.mkdir(parents=True, exist_ok=True)
        handle = self.lock_path.open("a")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            handle.close()
            raise JournalError(
                f"{self.path} already has a writer (flock on "
                f"{self.lock_path} is held); refusing to interleave frames"
            ) from exc
        self._handle = handle

    def release(self) -> None:
        if self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - defensive
                pass
            self._handle.close()
            self._handle = None


@dataclass(frozen=True)
class JournalRecovery:
    """What loading a journal found besides the good records."""

    loaded: int = 0
    corrupt: int = 0
    duplicates: int = 0
    truncated_tail: bool = False

    @property
    def clean(self) -> bool:
        return not (self.corrupt or self.duplicates or self.truncated_tail)

    def render(self) -> str:
        notes = []
        if self.corrupt:
            notes.append(f"{self.corrupt} corrupt record(s) dropped")
        if self.duplicates:
            notes.append(f"{self.duplicates} duplicate key(s) superseded")
        if self.truncated_tail:
            notes.append("truncated final line skipped")
        suffix = f" ({'; '.join(notes)})" if notes else ""
        return f"journal: {self.loaded} trial record(s) loaded{suffix}"


class SweepJournal:
    """An append-only, CRC-checked, atomically-checkpointed trial journal.

    Typical lifecycle::

        journal = SweepJournal(path)
        completed, recovery = journal.load()       # resume point
        with journal.guarded():                    # SIGTERM/SIGINT safe
            for record in new_outcomes:
                journal.append(record)             # fsync'd per record
        journal.close()                            # final atomic checkpoint

    ``load`` + ``append`` may be freely interleaved; the in-memory
    last-write-wins view tracks everything appended or loaded.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._records: Dict[Key, TrialRecord] = {}
        self._recovery = JournalRecovery()
        self._handle = None
        self._lock = WriterLock(self.path)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def load(self) -> Tuple[Dict[Key, TrialRecord], JournalRecovery]:
        """Read the journal from disk, tolerating a damaged tail and
        corrupt or duplicate records.  Returns the last-write-wins view
        keyed by ``(x, seed)`` plus a :class:`JournalRecovery` tally."""
        records: Dict[Key, TrialRecord] = {}
        corrupt = 0
        duplicates = 0
        truncated = False
        if self.path.exists():
            raw = self.path.read_text(encoding="utf-8")
            lines = raw.split("\n")
            # A file not ending in a newline means the final write was
            # interrupted; anything on that last partial line is suspect.
            tail_is_torn = bool(lines and lines[-1].strip())
            for index, line in enumerate(lines):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = decode_record(line)
                except JournalError:
                    if tail_is_torn and index == len(lines) - 1:
                        truncated = True
                    else:
                        corrupt += 1
                    continue
                if record.key in records:
                    duplicates += 1
                records[record.key] = record
        self._records = records
        self._recovery = JournalRecovery(
            loaded=len(records),
            corrupt=corrupt,
            duplicates=duplicates,
            truncated_tail=truncated,
        )
        return dict(records), self._recovery

    @property
    def records(self) -> Dict[Key, TrialRecord]:
        """The current in-memory last-write-wins view."""
        return dict(self._records)

    @property
    def recovery(self) -> JournalRecovery:
        return self._recovery

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def _open(self):
        if self._handle is None:
            self._lock.acquire()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        return self._handle

    def append(self, record: TrialRecord) -> None:
        """Durably append one record: write, flush, fsync.

        The record also enters the in-memory view (last write wins), so
        interleaved append/load callers always see the freshest state.
        """
        handle = self._open()
        handle.write(encode_record(record) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        self._records[record.key] = record

    def checkpoint(self) -> None:
        """Atomically rewrite the journal as its compacted view.

        Writes every in-memory record (duplicates collapsed, corrupt
        lines gone) to ``<path>.tmp``, fsyncs, then ``os.replace``\\ s it
        over the journal — the POSIX-atomic flush point.  Readers at any
        instant see either the old journal or the new one, never a
        partial file.
        """
        self._lock.acquire()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.path.with_suffix(self.path.suffix + ".tmp")
        with temp.open("w", encoding="utf-8") as handle:
            for key in sorted(self._records):
                handle.write(encode_record(self._records[key]) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)

    def discard(self) -> None:
        """Delete the journal (the ``fresh=True`` path) and forget state."""
        self._lock.acquire()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self.path.exists():
            self.path.unlink()
        self._records = {}
        self._recovery = JournalRecovery()

    def close(self, checkpoint: bool = True) -> None:
        """Flush, close, and release the writer lock; by default leaves a
        compacted checkpoint."""
        if checkpoint and self._records:
            self.checkpoint()
        elif self._handle is not None:
            self._handle.close()
            self._handle = None
        self._lock.release()

    # ------------------------------------------------------------------
    # Signal safety
    # ------------------------------------------------------------------

    def guarded(self) -> "_SignalGuard":
        """Context manager: SIGTERM/SIGINT write a final checkpoint first.

        Inside the block, a delivered SIGTERM or SIGINT triggers
        :meth:`checkpoint` before the previous handler (or the default
        behavior) proceeds, so even a service-manager shutdown leaves a
        compacted, CRC-clean journal.  A no-op off the main thread,
        where Python forbids signal handler installation.
        """
        return _SignalGuard(self)


class _SignalGuard:
    def __init__(self, journal: SweepJournal) -> None:
        self.journal = journal
        self._previous: Dict[int, object] = {}

    def __enter__(self) -> "_SignalGuard":
        if threading.current_thread() is not threading.main_thread():
            return self  # pragma: no cover - signal API limit
        for signum in (signal.SIGTERM, signal.SIGINT):
            self._previous[signum] = signal.getsignal(signum)
            signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous = {}

    def _handle(self, signum, frame) -> None:
        try:
            self.journal.checkpoint()
        finally:
            previous = self._previous.get(signum)
            # Restore and re-deliver so the default semantics (KeyboardInterrupt
            # for SIGINT, termination for SIGTERM) still apply.
            signal.signal(signum, previous or signal.SIG_DFL)
            os.kill(os.getpid(), signum)


# ----------------------------------------------------------------------
# Checkpointed sweeps over the journal
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PointSummary:
    """One x value's trials reduced to resumable summary data."""

    x: float
    succeeded: int
    failed: int
    timeouts: int
    metrics: Dict[str, float]

    @property
    def trials(self) -> int:
        return self.succeeded + self.failed


def summarize_point(x: float, records: Sequence[TrialRecord]) -> PointSummary:
    """Aggregate one x value's trial records (mean over the ok trials)."""
    ok = [record for record in records if record.ok]
    failed = [record for record in records if not record.ok]
    timeouts = sum(1 for record in failed if record.status == "timeout")
    metrics: Dict[str, float] = {}
    if ok:
        keys = sorted(ok[0].metrics)
        metrics = {
            key: mean([record.metrics.get(key, 0.0) for record in ok])
            for key in keys
        }
    return PointSummary(
        x=x,
        succeeded=len(ok),
        failed=len(failed),
        timeouts=timeouts,
        metrics=metrics,
    )


def record_of_failure(failure) -> TrialRecord:
    """Reduce a :class:`~repro.experiments.sweep.TrialFailure` (or
    :class:`~repro.experiments.sweep.TrialTimeout`) to its journal record."""
    from .sweep import TrialTimeout

    status = "timeout" if isinstance(failure, TrialTimeout) else "failed"
    return TrialRecord(
        x=failure.x,
        seed=failure.seed,
        status=status,
        attempt=failure.attempt,
        error=str(failure.error),
        kind=type(failure.error).__name__,
    )


def checkpointed_sweep(
    xs: Sequence[float],
    make_scenario,
    make_config,
    *,
    journal,
    seeds: Sequence[int] = (0,),
    settings=None,
    jobs: int = 1,
    policy: Optional["ResiliencePolicy"] = None,
    fresh: bool = False,
    digests: bool = False,
    on_trial_error: Optional[Callable] = None,
    on_progress: Optional[Callable] = None,
    on_point: Optional[Callable[[float, "SweepPoint"], None]] = None,
    on_report: Optional[Callable] = None,
) -> List[PointSummary]:
    """A sweep that journals each finished trial and resumes on rerun.

    ``journal`` is a path or :class:`SweepJournal`.  Trials whose
    ``(x, seed)`` keys are already journaled are loaded, not re-run; the
    remaining trials go through :func:`~repro.experiments.sweep.sweep`
    one x at a time (with ``jobs``/``policy`` resilience), each trial
    appended durably the moment its point completes.  ``fresh=True``
    discards the journal first.  SIGTERM/SIGINT during the run leave a
    compacted checkpoint behind (:meth:`SweepJournal.guarded`), and the
    normal exit path writes one too.

    ``digests=True`` fingerprints every trial (``sweep(..., digests=
    True)``) and stores the SHA-256 digest in its journal record, so a
    resumed run — the sweep service after a daemon crash — can be
    checked bit-for-bit against an undisturbed foreground run.

    ``on_point`` observes each newly-executed x's
    :class:`~repro.experiments.sweep.SweepPoint` (skipped x values whose
    trials were all journaled are not re-reported); ``on_report``
    receives each per-x :class:`~repro.experiments.resilience.
    SupervisionReport` when a ``policy`` is active — merge them with
    :meth:`~repro.experiments.resilience.SupervisionReport.merged`.

    Returns a :class:`PointSummary` per requested x, in request order.
    A point whose trials all failed summarizes with ``metrics == {}``
    rather than raising, so one dead point cannot wedge the resume loop.
    """
    from .config import RunSettings
    from .sweep import sweep

    if settings is None:
        settings = RunSettings()
    owns_journal = not isinstance(journal, SweepJournal)
    journal = journal if isinstance(journal, SweepJournal) else SweepJournal(journal)
    if fresh:
        journal.discard()
    completed, _recovery = journal.load()

    try:
        with journal.guarded():
            for x in xs:
                missing = [
                    seed for seed in seeds if (x, seed) not in completed
                ]
                if not missing:
                    continue
                points = sweep(
                    [x],
                    make_scenario,
                    make_config,
                    seeds=missing,
                    settings=settings,
                    jobs=jobs,
                    policy=policy,
                    digests=digests,
                    on_trial_error=on_trial_error,
                    on_progress=on_progress,
                    on_report=on_report,
                )
                point = points[0]
                for run in point.runs:
                    try:
                        metrics = {
                            key: float(value)
                            for key, value in run.result.summary_row().items()
                        }
                    except AnalysisError:  # pragma: no cover - defensive
                        metrics = {}
                    fingerprint = getattr(run, "fingerprint", None)
                    journal.append(
                        TrialRecord(
                            x=x,
                            seed=run.seed,
                            status="ok",
                            attempt=getattr(run, "attempt", 1),
                            metrics=metrics,
                            digest=(
                                fingerprint.digest
                                if fingerprint is not None
                                else ""
                            ),
                        )
                    )
                for failure in point.failures:
                    journal.append(record_of_failure(failure))
                completed = journal.records
                if on_point is not None:
                    on_point(x, point)
    finally:
        if owns_journal:
            journal.close()

    records = journal.records
    summaries: List[PointSummary] = []
    for x in xs:
        point_records = [
            records[(x, seed)] for seed in seeds if (x, seed) in records
        ]
        summaries.append(summarize_point(x, point_records))
    return summaries
