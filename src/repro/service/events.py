"""Streaming events: what ``repro watch`` sees while a job runs.

Events are plain dicts (they go straight onto the wire as JSON lines).
Every event carries ``event`` (its type) and ``job`` (the job id):

``state``
    Job lifecycle transition (queued → running → done/failed/cancelled).
``trial``
    One ``(x, seed)`` trial finished — ok or failed, with its digest
    when fingerprinting is on.  Emitted per completion, so a watcher
    sees progress trial-by-trial, not just at the end.
``point``
    One sweep x-value completed with its aggregated loop statistics.
``snapshot``
    A :class:`~repro.telemetry.MetricsSnapshot` aggregation — the
    rolling union of every finished trial's telemetry.
``log``
    Free-form daemon commentary (resume notices, bench cycle results).
``end``
    Stream terminator; the daemon closes the watch connection after it.

The :class:`EventBus` fans events out to any number of subscribers.
Publishing is thread-safe (jobs execute in a worker thread; subscribers
live on the asyncio loop) via ``loop.call_soon_threadsafe``.  Slow
subscribers never block the executor: queues are unbounded, and a
subscriber that disconnects simply stops draining its queue, which the
daemon then discards.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from ..telemetry import GaugeSnapshot, HistogramSnapshot, MetricsSnapshot

#: Event type names, for validation and documentation.
EVENT_TYPES = ("state", "trial", "point", "snapshot", "log", "end")


# -- event builders -----------------------------------------------------


def state_event(job_id: str, state: str, detail: Optional[Dict] = None) -> Dict:
    event = {"event": "state", "job": job_id, "state": state}
    if detail:
        event["detail"] = dict(detail)
    return event


def trial_event(
    job_id: str,
    x: float,
    seed: int,
    ok: bool,
    digest: str = "",
    error: str = "",
) -> Dict:
    event = {"event": "trial", "job": job_id, "x": x, "seed": seed, "ok": ok}
    if digest:
        event["digest"] = digest
    if error:
        event["error"] = error
    return event


def point_event(job_id: str, x: float, stats: Dict) -> Dict:
    return {"event": "point", "job": job_id, "x": x, "stats": dict(stats)}


def snapshot_event(job_id: str, snapshot: MetricsSnapshot) -> Dict:
    return {
        "event": "snapshot",
        "job": job_id,
        "metrics": snapshot_to_json(snapshot),
    }


def log_event(job_id: str, message: str) -> Dict:
    return {"event": "log", "job": job_id, "message": message}


def end_event(job_id: str, state: str) -> Dict:
    return {"event": "end", "job": job_id, "state": state}


# -- MetricsSnapshot wire format ----------------------------------------


def snapshot_to_json(snapshot: MetricsSnapshot) -> Dict:
    """Flatten a :class:`MetricsSnapshot` to JSON-able data."""
    return {
        "counters": dict(snapshot.counters),
        "gauges": {
            name: {"value": g.value, "high_water": g.high_water}
            for name, g in snapshot.gauges.items()
        },
        "histograms": {
            name: {
                "bounds": list(h.bounds),
                "bucket_counts": list(h.bucket_counts),
                "count": h.count,
                "total": h.total,
                "min": h.min,
                "max": h.max,
            }
            for name, h in snapshot.histograms.items()
        },
    }


def snapshot_from_json(data: Dict) -> MetricsSnapshot:
    """Inverse of :func:`snapshot_to_json`."""
    return MetricsSnapshot(
        counters={str(k): int(v) for k, v in data.get("counters", {}).items()},
        gauges={
            str(name): GaugeSnapshot(
                value=float(g["value"]), high_water=float(g["high_water"])
            )
            for name, g in data.get("gauges", {}).items()
        },
        histograms={
            str(name): HistogramSnapshot(
                bounds=tuple(h["bounds"]),
                bucket_counts=tuple(h["bucket_counts"]),
                count=int(h["count"]),
                total=float(h["total"]),
                min=h["min"],
                max=h["max"],
            )
            for name, h in data.get("histograms", {}).items()
        },
    )


# -- fan-out ------------------------------------------------------------


class EventBus:
    """Fan events out from the executor thread to asyncio subscribers."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        # A list, not a set: delivery order follows subscription order.
        self._subscribers: List[asyncio.Queue] = []
        #: Recent events per job so a late subscriber can catch up.
        self._history: Dict[str, List[Dict]] = {}
        self._history_limit = 1000

    def subscribe(self, job_id: Optional[str] = None) -> asyncio.Queue:
        """Register a subscriber queue; replays the job's history first."""
        queue: asyncio.Queue = asyncio.Queue()
        if job_id is not None:
            for event in self._history.get(job_id, []):
                queue.put_nowait(event)
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        if queue in self._subscribers:
            self._subscribers.remove(queue)

    def publish(self, event: Dict) -> None:
        """Deliver one event to all subscribers.  Safe from any thread."""
        self._loop.call_soon_threadsafe(self._publish_on_loop, event)

    def _publish_on_loop(self, event: Dict) -> None:
        job_id = event.get("job")
        if job_id is not None:
            history = self._history.setdefault(job_id, [])
            history.append(event)
            if len(history) > self._history_limit:
                del history[: len(history) - self._history_limit]
        for queue in list(self._subscribers):
            queue.put_nowait(event)

    def drop_history(self, job_id: str) -> None:
        self._history.pop(job_id, None)
