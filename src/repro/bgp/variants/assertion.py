"""The Assertion approach [Pei et al., INFOCOM 2002].

"When node v receives a path path(u, new) from neighbor u, v removes any
backup paths that include u and contain a sub-path different from
path(u, new)" (paper §5).  A withdrawal from u is the degenerate case: u has
no path, so *every* stored path through u is obsolete.

Removing provably-stale Adj-RIB-In entries shrinks the pool of obsolete
backup paths that path exploration would otherwise walk through, which both
speeds convergence and reduces transient loops.  Its effectiveness depends on
topology: in a clique every node neighbors the origin, so a single
withdrawal asserts away all backups at once; in Internet-like graphs the
origin is further away and fewer stored paths mention the updating neighbor.
"""

from __future__ import annotations

from typing import List, Optional

from ..messages import Prefix
from ..path import AsPath
from ..rib import AdjRibIn


def stale_entries(
    adj_rib_in: AdjRibIn,
    prefix: Prefix,
    updating_neighbor: int,
    new_path: Optional[AsPath],
) -> List[int]:
    """Neighbors whose stored route for ``prefix`` the assertion invalidates.

    Parameters
    ----------
    adj_rib_in:
        The receiving node's Adj-RIB-In.
    prefix:
        The destination the update is about.
    updating_neighbor:
        The neighbor *u* whose announcement/withdrawal was just received.
    new_path:
        *u*'s newly-announced path **as received** (u's AS at the head), or
        ``None`` for a withdrawal.

    Returns the neighbor ids (excluding *u* itself) whose stored routes
    mention *u* with a sub-path from *u* inconsistent with ``new_path``.
    The caller removes those entries and re-runs its decision process.
    """
    stale: List[int] = []
    for neighbor in adj_rib_in.neighbors_with(prefix):
        if neighbor == updating_neighbor:
            continue
        route = adj_rib_in.get(neighbor, prefix)
        assert route is not None
        suffix = route.path.suffix_from(updating_neighbor)
        if suffix is None:
            continue  # path does not go through u; assertion says nothing
        if new_path is None or suffix != new_path:
            stale.append(neighbor)
    return stale
