"""Shared plumbing for the figure benchmarks.

Each benchmark regenerates one paper figure through its driver, saves the
rendered series table under ``benchmarks/results/``, records headline
numbers in the pytest-benchmark ``extra_info``, and asserts the figure's
shape checks.  EXPERIMENTS.md is written from these result files.

Two extras support long parallel studies:

* :func:`checkpointed_sweep` wraps :func:`repro.experiments.sweep` with a
  JSON-lines journal: every completed sweep point is appended to
  ``results/<name>.points.jsonl`` the moment it finishes, and a rerun
  loads the journal and only executes the x values it is missing.  An
  interrupted sweep therefore *resumes* instead of silently re-running
  hours of finished trials from scratch.
* :func:`bench_cli` gives a benchmark module a ``python bench_x.py
  --jobs N`` entry point that times its figure drivers under the parallel
  sweep executor and prints the wall-clock per figure — the quickest way
  to see the speedup (or, on tiny topologies, the worker-startup cost).
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def save_figure(figure) -> Path:
    """Write the figure's rendered table to benchmarks/results/<id>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{figure.figure_id}.txt"
    path.write_text(figure.render() + "\n", encoding="utf-8")
    return path


def record(benchmark, figure, require_checks: bool = True) -> None:
    """Attach the figure's data to the benchmark record and save it.

    ``require_checks=False`` records check outcomes without failing the
    benchmark — used where the paper's claim is known not to reproduce on
    synthetic topologies (documented in EXPERIMENTS.md).
    """
    save_figure(figure)
    benchmark.extra_info["figure"] = figure.figure_id
    benchmark.extra_info["xs"] = list(figure.xs)
    for name, values in figure.series.items():
        benchmark.extra_info[name] = [round(v, 3) for v in values]
    benchmark.extra_info["checks"] = [str(check) for check in figure.checks]
    print()
    print(figure.render())
    if require_checks:
        failures = figure.check_failures()
        assert not failures, "; ".join(str(f) for f in failures)


# ----------------------------------------------------------------------
# Incremental (resumable) sweeps
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PointRecord:
    """One sweep point reduced to journal-able data."""

    x: float
    succeeded: int
    failed: int
    metrics: Dict[str, float]

    def to_json(self) -> str:
        return json.dumps(
            {
                "x": self.x,
                "succeeded": self.succeeded,
                "failed": self.failed,
                "metrics": self.metrics,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "PointRecord":
        data = json.loads(line)
        return cls(
            x=data["x"],
            succeeded=data["succeeded"],
            failed=data["failed"],
            metrics=data["metrics"],
        )


def point_journal_path(name: str) -> Path:
    """Where :func:`checkpointed_sweep` journals points for ``name``."""
    return RESULTS_DIR / f"{name}.points.jsonl"


def load_point_journal(path: Path) -> Dict[float, PointRecord]:
    """Completed points from a previous (possibly interrupted) run.

    A torn final line — the interrupt arriving mid-write — is skipped, so
    the journal is always safe to resume from.
    """
    completed: Dict[float, PointRecord] = {}
    if not path.exists():
        return completed
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record_ = PointRecord.from_json(line)
        except (json.JSONDecodeError, KeyError):
            continue
        completed[record_.x] = record_
    return completed


def checkpointed_sweep(
    name: str,
    xs: Sequence[float],
    make_scenario,
    make_config,
    *,
    seeds: Sequence[int] = (0,),
    settings=None,
    jobs: int = 1,
    fresh: bool = False,
    path: Optional[Path] = None,
    on_trial_error=None,
) -> List[PointRecord]:
    """A sweep that journals each finished point and resumes on rerun.

    Points already present in ``results/<name>.points.jsonl`` are loaded,
    not re-run; the remaining x values go through ``sweep(..., jobs=jobs)``
    one point at a time, each appended to the journal as soon as its trials
    complete.  ``fresh=True`` discards the journal first.  Returns records
    for every x in request order.

    A point whose trials all failed journals with ``metrics == {}`` rather
    than raising, so one dead point cannot wedge the resume loop.
    """
    from repro.experiments import RunSettings, sweep
    from repro.errors import AnalysisError

    settings = settings or RunSettings()
    journal = path if path is not None else point_journal_path(name)
    journal.parent.mkdir(exist_ok=True)
    if fresh and journal.exists():
        journal.unlink()
    completed = load_point_journal(journal)

    for x in xs:
        if x in completed:
            continue
        points = sweep(
            [x],
            make_scenario,
            make_config,
            seeds=seeds,
            settings=settings,
            jobs=jobs,
            on_trial_error=on_trial_error,
        )
        point = points[0]
        try:
            metrics = point.metrics()
        except AnalysisError:
            metrics = {}
        record_ = PointRecord(
            x=point.x,
            succeeded=point.succeeded,
            failed=point.failed,
            metrics=metrics,
        )
        with journal.open("a", encoding="utf-8") as handle:
            handle.write(record_.to_json() + "\n")
        completed[x] = record_

    return [completed[x] for x in xs]


# ----------------------------------------------------------------------
# Direct bench entry points (python bench_x.py --jobs N)
# ----------------------------------------------------------------------


def bench_cli(
    drivers: Dict[str, Callable[[int], object]],
    argv: Optional[Sequence[str]] = None,
    description: str = "Run figure drivers and report wall-clock time.",
) -> int:
    """Argparse front end shared by the ``__main__`` blocks of bench files.

    ``drivers`` maps a figure id to ``fn(jobs) -> FigureData``.  Each
    requested driver runs once under the given ``--jobs`` and prints its
    table plus the wall-clock seconds, so ``--jobs 4`` vs ``--jobs 1`` is a
    direct speedup measurement.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "figures", nargs="*", choices=[[], *sorted(drivers)],
        help="figure ids to run (default: all)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep trials (0 = one per CPU)",
    )
    args = parser.parse_args(argv)
    chosen = args.figures or sorted(drivers)

    total = 0.0
    for figure_id in chosen:
        start = time.perf_counter()
        figure = drivers[figure_id](args.jobs)
        elapsed = time.perf_counter() - start
        total += elapsed
        save_figure(figure)
        print(figure.render())
        print(f"[{figure_id}] wall-clock {elapsed:.2f}s (jobs={args.jobs})")
        print()
    print(f"total wall-clock {total:.2f}s for {len(chosen)} figure(s) "
          f"with --jobs {args.jobs}")
    return 0
