"""Experiment scenarios: a topology plus the failure event.

A :class:`Scenario` fixes *what breaks where*: the topology, the destination
AS (which originates the studied prefix), and the event.  The paper's §4.1
events are **Tdown** (the destination becomes unreachable — the origin
withdraws) and **Tlong** (one transit link fails; the destination stays
reachable over less-preferred paths).

Three *churn* events extend the family beyond the paper's single-failure
model, exercising the session lifecycle:

* **Treset** — the transport session on one link is reset (link stays up);
  both speakers purge, re-establish, and re-exchange full tables.
* **Tcrash** — a whole router crashes (queued messages, timers, RIBs lost),
  optionally restarting cold after ``restart_after`` seconds.
* **Tflap** — one link fails and recovers ``flap_count`` times with period
  ``flap_period``, driving repeated withdraw/re-advertise waves.

The module provides the paper's concrete scenario families —
Clique + Tdown, B-Clique + Tlong, Internet-like graphs with both events —
plus churn variants of the clique and B-Clique setups.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..bgp.aggregation import (
    DEFAULT_BLOCK_BITS,
    AggregateBlock,
    population_originations,
    prefix_population,
)
from ..errors import ConfigError, TopologyError
from ..topology import (
    Topology,
    b_clique,
    choose_destination,
    choose_failure_link,
    clique,
    internet_like,
    provider_load,
)

DEFAULT_PREFIX = "dest"
"""The prefix name used by all built-in scenarios."""


class EventKind(enum.Enum):
    """The two §4.1 topology-change events, plus the churn extensions."""

    TDOWN = "tdown"
    TLONG = "tlong"
    TRESET = "treset"
    TCRASH = "tcrash"
    TFLAP = "tflap"
    TAGG = "tagg"


#: Events whose trigger is a specific link (``failed_link`` required).
_LINK_EVENTS = frozenset({EventKind.TLONG, EventKind.TRESET, EventKind.TFLAP})


@dataclass(frozen=True)
class Scenario:
    """One fully-specified experiment setup.

    ``failed_link`` names the link for Tlong (failed), Treset (session
    reset), and Tflap (flapping).  ``crash_node``/``restart_after`` apply to
    Tcrash only; ``flap_period``/``flap_count`` to Tflap only.

    **Multi-prefix workloads.**  ``originations`` generalizes the
    single-destination model: when non-empty, each ``(node, prefix)`` pair
    is originated at warm-up *instead of* the implicit
    ``(destination, prefix)`` origination.  The legacy fields keep their
    meaning — ``destination``/``prefix`` name the origination the event and
    the per-prefix metrics focus on, and must appear in the list.  An empty
    ``originations`` is the legacy single-prefix path, byte-for-byte.

    ``agg_blocks``/``agg_hold`` drive the **Tagg** event: at the failure
    instant every block's origin collapses its specifics into the covering
    prefix (make-before-break), and ``agg_hold`` seconds later re-splits.
    """

    name: str
    topology: Topology
    destination: int
    event: EventKind
    failed_link: Optional[Tuple[int, int]] = None
    prefix: str = DEFAULT_PREFIX
    crash_node: Optional[int] = None
    restart_after: Optional[float] = None
    flap_period: Optional[float] = None
    flap_count: int = 1
    originations: Tuple[Tuple[int, str], ...] = field(default=())
    agg_blocks: Tuple[AggregateBlock, ...] = field(default=())
    agg_hold: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.topology.has_node(self.destination):
            raise ConfigError(
                f"destination {self.destination} not in topology {self.topology.name!r}"
            )
        if self.event in _LINK_EVENTS:
            if self.failed_link is None:
                raise ConfigError(
                    f"a {self.event.value} scenario must name the link it targets"
                )
            u, v = self.failed_link
            if not self.topology.has_edge(u, v):
                raise ConfigError(f"link ({u}, {v}) not in topology")
            if self.event is not EventKind.TRESET and self.topology.is_cut_edge(u, v):
                # A session reset never takes the link down, so a cut edge
                # is fine there; Tlong/Tflap actually disconnect it.
                raise ConfigError(
                    f"link ({u}, {v}) is a cut edge; failing it would disconnect "
                    "the graph, which contradicts the event's definition"
                )
        elif self.failed_link is not None:
            raise ConfigError(
                f"a {self.event.value} scenario must not name a failed link"
            )
        if self.event is EventKind.TCRASH:
            if self.crash_node is None:
                raise ConfigError("a Tcrash scenario must name the node to crash")
            if not self.topology.has_node(self.crash_node):
                raise ConfigError(f"crash node {self.crash_node} not in topology")
            if self.crash_node == self.destination:
                raise ConfigError(
                    "crashing the destination is a Tdown event, not a Tcrash"
                )
            if self.restart_after is not None and self.restart_after <= 0:
                raise ConfigError(
                    f"restart_after must be positive, got {self.restart_after}"
                )
        elif self.crash_node is not None or self.restart_after is not None:
            raise ConfigError(
                f"a {self.event.value} scenario must not set crash fields"
            )
        if self.event is EventKind.TFLAP:
            if self.flap_period is None or self.flap_period <= 0:
                raise ConfigError(
                    f"a Tflap scenario needs a positive flap_period, got "
                    f"{self.flap_period}"
                )
            if self.flap_count < 1:
                raise ConfigError(f"flap_count must be >= 1, got {self.flap_count}")
        elif self.flap_period is not None:
            raise ConfigError(
                f"a {self.event.value} scenario must not set a flap period"
            )
        if self.originations:
            for node, prefix in self.originations:
                if not self.topology.has_node(node):
                    raise ConfigError(
                        f"origination node {node} (for {prefix!r}) not in topology"
                    )
            if (self.destination, self.prefix) not in self.originations:
                raise ConfigError(
                    f"originations must include the focus pair "
                    f"({self.destination}, {self.prefix!r})"
                )
            if len(set(self.originations)) != len(self.originations):
                raise ConfigError("originations contain duplicates")
        if self.event is EventKind.TAGG:
            if not self.agg_blocks:
                raise ConfigError("a Tagg scenario needs at least one aggregate block")
            if self.agg_hold is None or self.agg_hold <= 0:
                raise ConfigError(
                    f"a Tagg scenario needs a positive agg_hold, got {self.agg_hold}"
                )
            if not self.originations:
                raise ConfigError("a Tagg scenario must list its originations")
            originated = set(self.originations)
            for block in self.agg_blocks:
                if not self.topology.has_node(block.origin):
                    raise ConfigError(
                        f"aggregate origin {block.origin} not in topology"
                    )
                for specific in block.specifics:
                    if (block.origin, specific) not in originated:
                        raise ConfigError(
                            f"block specific ({block.origin}, {specific!r}) is "
                            f"not originated at warm-up"
                        )
        elif self.agg_blocks or self.agg_hold is not None:
            raise ConfigError(
                f"a {self.event.value} scenario must not set aggregation fields"
            )

    @property
    def source_nodes(self) -> list:
        """Every AS that hosts a traffic source (all but the destination)."""
        return [n for n in self.topology.nodes if n != self.destination]

    @property
    def effective_originations(self) -> Tuple[Tuple[int, str], ...]:
        """What warm-up originates: the explicit list, or the legacy pair."""
        if self.originations:
            return self.originations
        return ((self.destination, self.prefix),)

    @property
    def all_prefixes(self) -> Tuple[str, ...]:
        """Every prefix the scenario can announce (originated or aggregate
        covers), sorted and distinct."""
        names = {prefix for _node, prefix in self.effective_originations}
        names.update(block.cover for block in self.agg_blocks)
        return tuple(sorted(names))

    def origins_by_prefix(self) -> dict:
        """``prefix -> (origin nodes...)`` over the effective originations."""
        table: dict = {}
        for node, prefix in self.effective_originations:
            table.setdefault(prefix, []).append(node)
        return {prefix: tuple(sorted(nodes)) for prefix, nodes in table.items()}


# ----------------------------------------------------------------------
# The paper's scenario families
# ----------------------------------------------------------------------


def tdown_clique(n: int) -> Scenario:
    """Tdown in an n-clique: the classic convergence worst case."""
    return Scenario(
        name=f"tdown-clique-{n}",
        topology=clique(n),
        destination=0,
        event=EventKind.TDOWN,
    )


def tlong_bclique(n: int) -> Scenario:
    """Tlong in a size-n B-Clique: fail the edge-to-core link (0, n).

    "AS 0 is chosen as the destination AS and the link between AS 0 and n is
    failed during simulation to induce a Tlong event."
    """
    return Scenario(
        name=f"tlong-bclique-{n}",
        topology=b_clique(n),
        destination=0,
        event=EventKind.TLONG,
        failed_link=(0, n),
    )


def tdown_internet(n: int, seed: int = 0) -> Scenario:
    """Tdown in an Internet-like graph; destination drawn from the stubs."""
    topo = internet_like(n, seed=seed)
    destination = choose_destination(topo, seed=seed)
    return Scenario(
        name=f"tdown-internet-{n}-s{seed}",
        topology=topo,
        destination=destination,
        event=EventKind.TDOWN,
    )


def tlong_internet(n: int, seed: int = 0, candidates: int = 8) -> Scenario:
    """Tlong in an Internet-like graph: fail the destination's primary link.

    Candidate destinations are low-degree nodes whose link can fail without
    disconnecting them (Tlong's definition).  Among the ``candidates``
    lowest-degree qualifying nodes, the one with the most *dominant* primary
    provider is selected — failing a dominant primary is the event the paper
    studies ("forces the rest of the network to use less preferred paths");
    failing a balanced provider's link converges almost silently.  The
    ``seed`` determines the topology and breaks remaining ties.
    """
    topo = internet_like(n, seed=seed)
    ranked = sorted(topo.nodes, key=lambda x: (topo.degree(x), x))
    best: Optional[Tuple[float, int, Tuple[int, int]]] = None
    examined = 0
    for destination in ranked:
        if topo.degree(destination) < 2:
            continue
        try:
            failed = choose_failure_link(topo, destination, seed=seed)
        except TopologyError:
            continue
        examined += 1
        loads = provider_load(topo, destination)
        total = sum(loads.values()) or 1
        dominance = loads[failed[1]] / total
        key = (dominance, -destination)
        if best is None or key > best[0:2]:
            best = (dominance, -destination, failed)
        if examined >= candidates:
            break
    if best is None:
        raise ConfigError(f"no Tlong-capable destination in internet_like({n}, {seed})")
    destination = -best[1]
    return Scenario(
        name=f"tlong-internet-{n}-s{seed}",
        topology=topo,
        destination=destination,
        event=EventKind.TLONG,
        failed_link=best[2],
    )


# ----------------------------------------------------------------------
# Churn scenario families (session lifecycle extensions)
# ----------------------------------------------------------------------


def treset_clique(n: int, link: Optional[Tuple[int, int]] = None) -> Scenario:
    """Treset in an n-clique: reset one session, watch the re-exchange.

    Defaults to the (0, 1) session — destination-adjacent, so the reset
    peer must re-learn its best (direct) route to the prefix.
    """
    link = link or (0, 1)
    return Scenario(
        name=f"treset-clique-{n}",
        topology=clique(n),
        destination=0,
        event=EventKind.TRESET,
        failed_link=link,
    )


def tcrash_clique(
    n: int, crash: int = 1, restart_after: Optional[float] = 30.0
) -> Scenario:
    """Tcrash in an n-clique: crash a transit AS, optionally restart it.

    The destination stays reachable (every survivor keeps a direct link to
    AS 0), so the interesting dynamics are the withdraw wave at the crash
    and the cold re-learning at the restart.
    """
    return Scenario(
        name=f"tcrash-clique-{n}",
        topology=clique(n),
        destination=0,
        event=EventKind.TCRASH,
        crash_node=crash,
        restart_after=restart_after,
    )


def tagg_clique(
    n: int,
    prefixes: int,
    seed: int = 0,
    origins: int = 1,
    block_bits: int = DEFAULT_BLOCK_BITS,
    hold: float = 30.0,
) -> Scenario:
    """Tagg in an n-clique: a prefix population aggregates and re-splits.

    ``prefixes`` specifics (a seeded population across the first
    ``origins`` nodes, blocks of 2^``block_bits`` under one cover each) are
    announced at warm-up.  At the event, every origin collapses its blocks
    into covers; ``hold`` seconds later they deaggregate back.  The focus
    pair for legacy per-prefix metrics is the first block's first specific.
    """
    if not 1 <= origins <= n:
        raise ConfigError(f"origin count must be in [1, {n}], got {origins}")
    blocks = prefix_population(
        prefixes, list(range(origins)), seed=seed, block_bits=block_bits
    )
    originations = tuple(population_originations(blocks))
    focus = blocks[0]
    return Scenario(
        name=f"tagg-clique-{n}-p{prefixes}-o{origins}-s{seed}",
        topology=clique(n),
        destination=focus.origin,
        event=EventKind.TAGG,
        prefix=focus.specifics[0],
        originations=originations,
        agg_blocks=tuple(blocks),
        agg_hold=hold,
    )


def tflap_bclique(n: int, period: float, count: int = 3) -> Scenario:
    """Tflap in a size-n B-Clique: flap the edge-to-core link (0, n).

    The same link Tlong fails once, now failing and recovering ``count``
    times ``period`` seconds apart — the loop-inducing event repeated
    faster than (or slower than) the network can converge.
    """
    return Scenario(
        name=f"tflap-bclique-{n}-p{period}",
        topology=b_clique(n),
        destination=0,
        event=EventKind.TFLAP,
        failed_link=(0, n),
        flap_period=period,
        flap_count=count,
    )


# ----------------------------------------------------------------------
# Trial adapters: (x, seed) -> Scenario, module-level so they pickle
# ----------------------------------------------------------------------
#
# Sweeps call ``make_scenario(x, seed)``; the family constructors above
# take domain parameters (clique size, flap period...).  These adapters fix
# the translation once, at module scope, so parallel sweeps can ship them
# to worker processes by reference (see repro.experiments.spec).  Fixed
# parameters (a constant topology size under an MRAI sweep, a flap count)
# are bound with ``factory_ref(adapter, size=...)``.


def clique_tdown_trial(x: float, seed: int) -> Scenario:
    """x is the clique size (Figures 4a, 6a, 8a/8b, 9a/9b...)."""
    return tdown_clique(int(x))


def bclique_tlong_trial(x: float, seed: int) -> Scenario:
    """x is the B-Clique size (Figures 4b, 6b)."""
    return tlong_bclique(int(x))


def internet_tdown_trial(x: float, seed: int) -> Scenario:
    """x is the Internet-like graph size; the seed varies the graph."""
    return tdown_internet(int(x), seed=seed)


def internet_tlong_trial(x: float, seed: int) -> Scenario:
    """x is the Internet-like graph size; the seed varies the graph."""
    return tlong_internet(int(x), seed=seed)


def clique_tdown_fixed(x: float, seed: int, *, size: int) -> Scenario:
    """Fixed-size clique Tdown for sweeps whose x is something else (MRAI)."""
    return tdown_clique(size)


def bclique_tlong_fixed(x: float, seed: int, *, size: int) -> Scenario:
    """Fixed-size B-Clique Tlong for MRAI-on-the-x-axis sweeps."""
    return tlong_bclique(size)


def bclique_tflap_trial(x: float, seed: int, *, size: int, count: int = 3) -> Scenario:
    """x is the flap period over a fixed-size B-Clique (churn sweeps)."""
    return tflap_bclique(size, period=x, count=count)


def clique_tagg_trial(
    x: float,
    seed: int,
    *,
    size: int,
    origins: int = 1,
    block_bits: int = DEFAULT_BLOCK_BITS,
    hold: float = 30.0,
) -> Scenario:
    """x is the prefix-population size over a fixed-size clique (Tagg)."""
    return tagg_clique(
        size,
        prefixes=int(x),
        seed=seed,
        origins=origins,
        block_bits=block_bits,
        hold=hold,
    )


def multiprefix_trial(x: float, seed: int, *, base: str, size: int) -> Scenario:
    """A legacy family run through the multi-prefix origination path.

    ``base`` picks the underlying family (``"tdown"`` on a clique or
    ``"tflap"`` on a B-Clique); the scenario is identical except that the
    origination is expressed through ``originations`` — the golden
    equivalence tests pin that this is a strict generalization (same trace
    digest as the legacy path).
    """
    if base == "tdown":
        legacy = tdown_clique(size)
    elif base == "tflap":
        legacy = tflap_bclique(size, period=x, count=3)
    else:
        raise ConfigError(f"unknown multiprefix base family {base!r}")
    return with_explicit_originations(legacy)


def with_explicit_originations(scenario: Scenario) -> Scenario:
    """The same scenario with its origination made explicit (N=1 list)."""
    return replace(
        scenario,
        originations=((scenario.destination, scenario.prefix),),
    )


def clique_treset_trial(x: float, seed: int) -> Scenario:
    """x is the clique size; the (0, 1) session is reset."""
    return treset_clique(int(x))


def clique_tcrash_trial(
    x: float, seed: int, *, restart_after: Optional[float] = 30.0
) -> Scenario:
    """x is the clique size; transit AS 1 crashes."""
    return tcrash_clique(int(x), restart_after=restart_after)


def custom_tdown(topology: Topology, destination: int, name: str = "") -> Scenario:
    """Tdown on a user-supplied topology."""
    return Scenario(
        name=name or f"tdown-{topology.name}",
        topology=topology,
        destination=destination,
        event=EventKind.TDOWN,
    )


def custom_tlong(
    topology: Topology,
    destination: int,
    failed_link: Tuple[int, int],
    name: str = "",
) -> Scenario:
    """Tlong on a user-supplied topology and link."""
    return Scenario(
        name=name or f"tlong-{topology.name}",
        topology=topology,
        destination=destination,
        event=EventKind.TLONG,
        failed_link=failed_link,
    )
