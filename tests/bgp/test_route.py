"""Unit tests for Route."""

import pickle

import pytest

from repro.bgp import AsPath, Route, intern_route, local_route


class TestValidation:
    def test_stored_path_must_start_at_next_hop(self):
        with pytest.raises(ValueError):
            Route(prefix="d", path=AsPath((5, 0)), next_hop=4)

    def test_non_local_route_needs_next_hop(self):
        with pytest.raises(ValueError):
            Route(prefix="d", path=AsPath((5, 0)), next_hop=None)

    def test_valid_learned_route(self):
        route = Route(prefix="d", path=AsPath((5, 0)), next_hop=5)
        assert not route.is_local
        assert route.hop_count == 2

    def test_local_route_helper(self):
        route = local_route("d")
        assert route.is_local
        assert route.hop_count == 0
        assert route.path.is_empty


class TestBehavior:
    def test_advertised_by_prepends(self):
        route = Route(prefix="d", path=AsPath((5, 0)), next_hop=5)
        assert route.advertised_by(7) == AsPath((7, 5, 0))

    def test_equality_ignores_learned_at(self):
        a = Route(prefix="d", path=AsPath((5, 0)), next_hop=5, learned_at=1.0)
        b = Route(prefix="d", path=AsPath((5, 0)), next_hop=5, learned_at=9.0)
        assert a == b

    def test_equality_respects_local_pref(self):
        a = Route(prefix="d", path=AsPath((5, 0)), next_hop=5, local_pref=100)
        b = Route(prefix="d", path=AsPath((5, 0)), next_hop=5, local_pref=200)
        assert a != b


class TestInterning:
    def test_same_key_is_same_object(self):
        a = intern_route("d", AsPath((5, 0)), 5)
        b = intern_route("d", AsPath((5, 0)), 5)
        assert a is b
        assert Route.of("d", AsPath((5, 0)), 5) is a

    def test_distinct_keys_are_distinct(self):
        a = intern_route("d", AsPath((5, 0)), 5)
        b = intern_route("d", AsPath((5, 0)), 5, local_pref=200)
        assert a is not b and a != b

    def test_uninterned_path_lands_on_shared_instance(self):
        # A fresh (non-canonical) AsPath argument must still hit the table.
        a = intern_route("d", AsPath.of((5, 0)), 5)
        b = intern_route("d", AsPath((5, 0)), 5)
        assert a is b
        assert a.path is AsPath.of((5, 0))

    def test_interned_routes_carry_no_timestamp(self):
        assert intern_route("d", AsPath((5, 0)), 5).learned_at == 0.0

    def test_direct_construction_compares_equal_to_canonical(self):
        direct = Route(prefix="d", path=AsPath((5, 0)), next_hop=5, learned_at=3.0)
        canonical = intern_route("d", AsPath((5, 0)), 5)
        assert direct == canonical
        assert hash(direct) == hash(canonical)
        assert direct is not canonical

    def test_local_route_default_is_interned(self):
        assert local_route("d") is local_route("d")
        timed = local_route("d", learned_at=4.0)
        assert timed is not local_route("d")
        assert timed == local_route("d")

    def test_pickle_reinterns_timestamp_free_routes(self):
        route = intern_route("d", AsPath((5, 0)), 5)
        assert pickle.loads(pickle.dumps(route)) is route

    def test_pickle_preserves_timestamp_uninterned(self):
        timed = Route(prefix="d", path=AsPath((5, 0)), next_hop=5, learned_at=2.5)
        clone = pickle.loads(pickle.dumps(timed))
        assert clone == timed
        assert clone.learned_at == 2.5
        assert clone is not intern_route("d", AsPath((5, 0)), 5)
