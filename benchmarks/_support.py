"""Shared plumbing for the figure benchmarks.

Each benchmark regenerates one paper figure through its driver, saves the
rendered series table under ``benchmarks/results/``, records headline
numbers in the pytest-benchmark ``extra_info``, and asserts the figure's
shape checks.  EXPERIMENTS.md is written from these result files.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_figure(figure) -> Path:
    """Write the figure's rendered table to benchmarks/results/<id>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{figure.figure_id}.txt"
    path.write_text(figure.render() + "\n", encoding="utf-8")
    return path


def record(benchmark, figure, require_checks: bool = True) -> None:
    """Attach the figure's data to the benchmark record and save it.

    ``require_checks=False`` records check outcomes without failing the
    benchmark — used where the paper's claim is known not to reproduce on
    synthetic topologies (documented in EXPERIMENTS.md).
    """
    save_figure(figure)
    benchmark.extra_info["figure"] = figure.figure_id
    benchmark.extra_info["xs"] = list(figure.xs)
    for name, values in figure.series.items():
        benchmark.extra_info[name] = [round(v, 3) for v in values]
    benchmark.extra_info["checks"] = [str(check) for check in figure.checks]
    print()
    print(figure.render())
    if require_checks:
        failures = figure.check_failures()
        assert not failures, "; ".join(str(f) for f in failures)
