"""Replication of Griffin & Premore's MRAI optimum (the paper's ref [5]).

Footnote 3 of the paper: the linear convergence-vs-MRAI relationship "holds
only when the MRAI value is larger than a topology-specific optimal value,
which is a value large enough for a node to process the messages received
from all the neighbors."  Sweeping M down through that optimum must produce
the characteristic U-curve: below it, the un-throttled message storm keeps
the serialized router CPUs busy and convergence *rises* again as M shrinks.
"""

from _support import RESULTS_DIR

from repro.bgp import BgpConfig
from repro.experiments import RunSettings, run_experiment, tdown_clique
from repro.util import mean, render_series

MRAI_VALUES = (0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0)
SEEDS = (0, 1)
CLIQUE = 10


def run_sweep():
    conv, updates = [], []
    for mrai in MRAI_VALUES:
        results = [
            run_experiment(
                tdown_clique(CLIQUE), BgpConfig.standard(mrai), RunSettings(), seed=s
            ).result
            for s in SEEDS
        ]
        conv.append(mean([r.convergence_time for r in results]))
        updates.append(mean([float(r.convergence.update_count) for r in results]))
    return conv, updates


def test_mrai_optimum_u_curve(benchmark):
    conv, updates = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = render_series(
        "mrai",
        list(MRAI_VALUES),
        [("convergence_s", conv), ("updates", updates)],
        title=f"Griffin-Premore MRAI optimum (Tdown clique-{CLIQUE})",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "mrai_optimum.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)

    best = conv.index(min(conv))
    # The optimum is interior: convergence worsens in BOTH directions.
    assert 0 < best < len(MRAI_VALUES) - 1, (
        f"expected an interior optimum, got index {best} of {conv}"
    )
    assert conv[0] > 1.5 * conv[best]      # storm regime on the left
    assert conv[-1] > 1.5 * conv[best]     # rate-limit regime on the right
    # Message volume decreases monotonically-ish as M grows.
    assert updates[0] > updates[-1]
