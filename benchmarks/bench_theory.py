"""§3.2 validation: measured loop lifetimes vs the (m-1)·M bound.

Runs the ring-with-backup scenarios and checks every observed single-loop
lifetime against the analytical worst case.  Also verifies the analytical
schedule itself agrees with the closed-form bound across (m, k).
"""

from _support import record

from repro.core import schedule_resolution_time, worst_case_detection_delay
from repro.experiments.figures import theory_bound_figure


def test_theory_loop_lifetime_bound(benchmark):
    figure = benchmark.pedantic(
        lambda: theory_bound_figure(
            ring_sizes=(3, 4, 5, 6, 8), mrai=10.0, seeds=(0, 1, 2)
        ),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)


def test_theory_schedule_matches_closed_form(benchmark):
    def sweep_all():
        mismatches = []
        for m in range(2, 20):
            for k in range(2, m + 1):
                scheduled = schedule_resolution_time(m, k, 30.0)
                closed = worst_case_detection_delay(m, k, 30.0)
                if scheduled != closed:
                    mismatches.append((m, k, scheduled, closed))
        return mismatches

    mismatches = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    assert mismatches == []
