"""End-to-end property: BGP warm-up convergence is policy-optimal.

For random connected topologies, after quiescence every node's path must be
a shortest path to the origin (with the smaller-next-hop tie-break), the
forwarding graph must be a loop-free tree into the origin, and every
speaker's RIB invariants must hold.  This validates the whole stack —
engine, channels, speaker, decision process — against an independent
networkx computation.
"""

import networkx as nx
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bgp import BgpConfig, BgpSpeaker
from repro.core import is_loop_free
from repro.dataplane import FibChangeLog, ForwardingGraph
from repro.engine import RandomStreams, Scheduler
from repro.net import Network
from repro.topology import Topology

PREFIX = "dest"


@st.composite
def connected_topologies(draw):
    """Random connected graphs of 3-8 nodes: a spanning tree plus extras."""
    n = draw(st.integers(min_value=3, max_value=8))
    topo = Topology(f"random-{n}")
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        topo.add_edge(node, parent)
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=6,
        )
    )
    for u, v in extra:
        if u != v and not topo.has_edge(u, v):
            topo.add_edge(u, v)
    return topo


def converge(topo, seed):
    scheduler = Scheduler()
    streams = RandomStreams(seed)
    log = FibChangeLog()
    config = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
    network = Network(
        topo,
        scheduler,
        lambda nid, sch: BgpSpeaker(
            nid, sch, config=config, streams=streams, fib_listener=log.record
        ),
    )
    network.node(0).originate(PREFIX)
    network.start()
    scheduler.run(max_events=500_000)
    return network


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(connected_topologies(), st.integers(min_value=0, max_value=100))
def test_warmup_reaches_shortest_path_tree(topo, seed):
    network = converge(topo, seed)
    graph = nx.Graph()
    graph.add_nodes_from(topo.nodes)
    graph.add_edges_from((u, v) for u, v, _d in topo.edges())
    distances = nx.single_source_shortest_path_length(graph, 0)

    forwarding = ForwardingGraph()
    for nid, node in network.nodes.items():
        node.check_invariants()
        best = node.best_route(PREFIX)
        assert best is not None, f"node {nid} has no route after warm-up"
        assert best.hop_count == distances[nid], (
            f"node {nid} selected a {best.hop_count}-hop path, shortest is "
            f"{distances[nid]}"
        )
        # Tie-break: among neighbors one hop closer, the smallest id wins.
        if nid != 0:
            closer = [
                nbr
                for nbr in topo.neighbors(nid)
                if distances[nbr] == distances[nid] - 1
            ]
            assert best.next_hop == min(closer)
        forwarding.set_next_hop(nid, node.fib.get(PREFIX))

    assert is_loop_free(forwarding)
    # Every node's forwarding chain reaches the origin.
    from repro.dataplane import PacketFate, walk

    for nid in topo.nodes:
        assert walk(forwarding, nid).fate is PacketFate.DELIVERED


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(connected_topologies(), st.integers(min_value=0, max_value=100))
def test_tdown_leaves_every_node_route_free(topo, seed):
    network = converge(topo, seed)
    scheduler = network.scheduler
    origin = network.node(0)
    scheduler.call_at(
        scheduler.now + 0.5, lambda: origin.withdraw_origin(PREFIX)
    )
    scheduler.run(max_events=500_000)
    for node in network.nodes.values():
        node.check_invariants()
        assert node.best_route(PREFIX) is None
