"""Cross-process error transport: failures must pickle without losses.

Parallel sweeps ship trial failures home through ``pickle``.  The default
exception reduction rebuilds ``cls(*args)`` — which would silently drop
``BudgetExceededError.snapshot`` — so these tests pin the full round trip
for every object that crosses the worker boundary.
"""

import pickle

import pytest

from repro.errors import BudgetExceededError, SanitizerError, SimulationError
from repro.experiments import (
    DiagnosticSnapshot,
    NodeState,
    TrialFailure,
    TrialTask,
    RunSettings,
    clique_tdown_trial,
    constant_config,
    factory_ref,
)
from repro.bgp import BgpConfig


def make_snapshot() -> DiagnosticSnapshot:
    return DiagnosticSnapshot(
        time=12.5,
        events_processed=4321,
        pending_events=17,
        substantive_pending=9,
        pending_by_name={"mrai": 8, "keepalive": 9},
        nodes=(
            NodeState(
                node_id=2,
                alive=True,
                cpu_busy=True,
                cpu_queue=5,
                messages_received=104,
            ),
        ),
        trace_tail=("t=12.400 1->2 update", "t=12.450 2->3 withdraw"),
        sanitizer_state=("causality: 4321 checks",),
    )


class TestBudgetExceededErrorPickle:
    def test_snapshot_survives(self):
        error = BudgetExceededError("budget gone", snapshot=make_snapshot())
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, BudgetExceededError)
        assert clone.snapshot == error.snapshot

    def test_message_survives(self):
        error = BudgetExceededError("scenario 'x' exhausted its budget")
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == str(error)
        assert clone.snapshot is None

    def test_snapshot_payload_is_usable_after_round_trip(self):
        error = BudgetExceededError("dead", snapshot=make_snapshot())
        clone = pickle.loads(pickle.dumps(error))
        snapshot = clone.snapshot
        assert snapshot.events_processed == 4321
        assert snapshot.pending_by_name == {"mrai": 8, "keepalive": 9}
        assert snapshot.busiest_nodes()[0].node_id == 2
        assert "busiest CPUs" in snapshot.render()
        assert "4321 events" in snapshot.brief()


class TestTrialFailurePickle:
    def test_round_trip_keeps_diagnostics(self):
        failure = TrialFailure(
            x=6.0,
            seed=3,
            error=BudgetExceededError("boom", snapshot=make_snapshot()),
        )
        clone = pickle.loads(pickle.dumps(failure))
        assert (clone.x, clone.seed) == (6.0, 3)
        assert clone.snapshot == failure.snapshot
        assert "x=6.0" in repr(clone)

    def test_plain_simulation_error_round_trips(self):
        failure = TrialFailure(x=1.0, seed=0, error=SimulationError("bad"))
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.snapshot is None
        assert str(clone.error) == "bad"


class TestSanitizerErrorPickle:
    def test_round_trip(self):
        error = SanitizerError("causality violated at t=3.2: msg before send")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, SanitizerError)
        assert str(clone) == str(error)

    def test_not_absorbed_as_simulation_error(self):
        # The sweep's fault isolation keys on SimulationError; a sanitizer
        # trip must stay outside that class even after a round trip.
        clone = pickle.loads(pickle.dumps(SanitizerError("x")))
        assert not isinstance(clone, SimulationError)


class TestTrialTaskPickle:
    def test_fully_specified_task_round_trips(self):
        task = TrialTask(
            index=3,
            x=5.0,
            seed=1,
            make_scenario=factory_ref(clique_tdown_trial),
            make_config=factory_ref(
                constant_config, config=BgpConfig(mrai=1.0)
            ),
            settings=RunSettings(failure_guard=0.5),
            digests=True,
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
        assert clone.make_scenario(5.0, 1).name == "tdown-clique-5"

    def test_closure_task_fails_to_pickle(self):
        task = TrialTask(
            index=0,
            x=3.0,
            seed=0,
            make_scenario=lambda x, seed: None,
            make_config=factory_ref(
                constant_config, config=BgpConfig(mrai=1.0)
            ),
            settings=RunSettings(),
        )
        with pytest.raises(Exception):
            pickle.dumps(task)
