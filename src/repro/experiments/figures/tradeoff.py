"""Packet-fate tradeoff study: loops traded for drops.

§5's caveat about the winning enhancement: Ghost Flushing "provides fast
propagation of failure information without propagating the new reachability
information at the same speed.  Thus nodes that lost their current path to
the destination ... end up dropping packets, as opposed to continuing
forwarding packets based on the old reachability information."

This driver quantifies that tradeoff, which the paper discusses but does
not plot: for a Tlong event (where delivery remains possible) it breaks
every packet sent during convergence into delivered / dropped-no-route /
looped-to-death, per protocol variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ...bgp import variant
from ...errors import AnalysisError
from ...util import mean, render_table
from ..config import RunSettings
from ..runner import run_experiment
from ..scenarios import Scenario


@dataclass(frozen=True)
class FateBreakdown:
    """Mean packet-fate fractions for one protocol variant."""

    variant: str
    packets_sent: float
    delivered_ratio: float
    no_route_ratio: float
    looped_ratio: float

    def row(self) -> List:
        return [
            self.variant,
            self.packets_sent,
            self.delivered_ratio,
            self.no_route_ratio,
            self.looped_ratio,
        ]


def packet_fate_breakdown(
    make_scenario: Callable[[int], Scenario],
    variant_names: Sequence[str],
    mrai: float = 30.0,
    seeds: Sequence[int] = (0, 1, 2),
    settings: RunSettings = RunSettings(),
) -> Dict[str, FateBreakdown]:
    """Run each variant over the seeded scenarios and pool packet fates."""
    if not seeds:
        raise AnalysisError("need at least one seed")
    result: Dict[str, FateBreakdown] = {}
    for name in variant_names:
        config = variant(name, mrai=mrai)
        sent: List[float] = []
        delivered: List[float] = []
        no_route: List[float] = []
        looped: List[float] = []
        for seed in seeds:
            report = run_experiment(
                make_scenario(seed), config, settings=settings, seed=seed
            ).result.dataplane
            sent.append(float(report.packets_sent))
            total = report.packets_sent or 1
            delivered.append(report.delivered / total)
            no_route.append(report.dropped_no_route / total)
            looped.append(report.ttl_exhaustions / total)
        result[name] = FateBreakdown(
            variant=name,
            packets_sent=mean(sent),
            delivered_ratio=mean(delivered),
            no_route_ratio=mean(no_route),
            looped_ratio=mean(looped),
        )
    return result


def render_fate_table(
    breakdowns: Dict[str, FateBreakdown], title: str
) -> str:
    """The tradeoff as an ASCII table (one row per variant)."""
    headers = ["variant", "packets", "delivered", "dropped_no_route", "looped"]
    rows = [breakdowns[name].row() for name in breakdowns]
    return render_table(headers, rows, title=title)
