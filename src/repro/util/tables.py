"""ASCII table rendering for experiment reports.

The benchmark harness prints each figure's data as a plain table (the series
the paper plots); this module keeps that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_cell(value: object, precision: int = 2) -> str:
    """Human formatting: floats rounded, None blanked, rest stringified."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render a fixed-width table with a header rule.

    >>> print(render_table(["n", "time"], [[5, 1.5], [10, 3.25]]))
    n  | time
    ---+-----
    5  | 1.50
    10 | 3.25
    """
    text_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in text_rows)
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: Sequence[tuple],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render several y-series against a shared x-axis.

    ``series`` is a sequence of ``(name, values)`` pairs; every values list
    must align with ``xs``.  This is the shape of every figure in the paper:
    an x-sweep (topology size or MRAI) with one line per metric or variant.
    """
    for name, values in series:
        if len(values) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(values)} points for {len(xs)} xs"
            )
    headers = [x_label] + [name for name, _values in series]
    rows = [
        [x] + [values[index] for _name, values in series]
        for index, x in enumerate(xs)
    ]
    return render_table(headers, rows, title=title, precision=precision)
