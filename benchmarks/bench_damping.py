"""Extension study: route-flap damping exacerbates convergence.

Mao et al. (SIGCOMM 2002) showed that RFC 2439 route-flap damping interacts
pathologically with BGP path exploration: the burst of route changes that
follows a *single* topology event looks like flapping, so dampers suppress
legitimately recovering routes and convergence stretches until the reuse
timers fire.  With a small MRAI (exploration updates arrive faster than the
penalty decays) the effect is roughly an order of magnitude on the
B-Clique Tlong scenario.
"""

from _support import RESULTS_DIR

from repro.bgp import BgpConfig, DampingConfig
from repro.experiments import RunSettings, run_experiment, tlong_bclique
from repro.util import mean, render_table

DAMPING = DampingConfig(half_life=120.0, max_suppress_time=600.0)
MRAI = 5.0
SEEDS = (0, 1)


def measure():
    rows = []
    conv = {}
    for label, config in (
        ("plain", BgpConfig.standard(MRAI)),
        ("damped", BgpConfig(mrai=MRAI, damping=DAMPING)),
    ):
        conv_times, exh, suppressions, unreachable = [], [], [], []
        for seed in SEEDS:
            run = run_experiment(
                tlong_bclique(8), config, RunSettings(), seed=seed,
                keep_network=True,
            )
            conv_times.append(run.result.convergence_time)
            exh.append(float(run.result.ttl_exhaustions))
            suppressions.append(
                float(
                    sum(
                        node.damper.suppressions
                        for node in run.network.nodes.values()
                        if node.damper is not None
                    )
                )
            )
            unreachable.append(
                float(
                    sum(
                        1
                        for node in run.network.nodes.values()
                        if node.best_route(run.scenario.prefix) is None
                    )
                )
            )
            for node in run.network.nodes.values():
                node.check_invariants()
        conv[label] = mean(conv_times)
        rows.append(
            [label, mean(conv_times), mean(exh), mean(suppressions),
             mean(unreachable)]
        )
    return rows, conv


def test_damping_exacerbates_convergence(benchmark):
    rows, conv = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = render_table(
        ["config", "convergence_s", "ttl_exhaustions", "suppressions",
         "final_unreachable"],
        rows,
        title=f"Route-flap damping on Tlong B-Clique-8 (MRAI {MRAI}s)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "damping.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)

    # The Mao et al. shape: a single event plus damping converges far
    # slower than without damping, yet ends in the same (reachable) state.
    assert conv["damped"] > 3 * conv["plain"], conv
    assert all(row[4] == 0.0 for row in rows)  # everyone reachable at the end
