"""Subprocess harness for daemon tests.

Runs ``repro serve`` as a real child process — the only honest way to
test SIGKILL survival — and wraps readiness polling, teardown, and the
blocking client.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import ServiceError
from repro.service import ServiceClient

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


class DaemonHarness:
    """One ``repro serve`` child bound to one state directory."""

    def __init__(self, state_dir, bench_interval=None) -> None:
        self.state_dir = Path(state_dir)
        self.bench_interval = bench_interval
        self.process = None
        self.client = ServiceClient(self.state_dir, timeout=120.0)

    def start(self, wait: bool = True) -> "DaemonHarness":
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--state",
            str(self.state_dir),
        ]
        if self.bench_interval is not None:
            command += ["--bench-interval", str(self.bench_interval)]
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            f"{SRC_DIR}{os.pathsep}{env['PYTHONPATH']}"
            if env.get("PYTHONPATH")
            else str(SRC_DIR)
        )
        self.process = subprocess.Popen(
            command,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        if wait:
            self.wait_ready()
        return self

    def wait_ready(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.process is not None and self.process.poll() is not None:
                raise AssertionError(
                    f"daemon exited {self.process.returncode} before ready:\n"
                    f"{self.process.stdout.read()}"
                )
            try:
                self.client.ping()
                return
            except ServiceError:
                time.sleep(0.05)
        raise AssertionError(f"daemon not ready within {timeout}s")

    def kill(self) -> None:
        """SIGKILL — the crash under test, nothing graceful about it."""
        assert self.process is not None
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)

    def terminate(self) -> int:
        """SIGTERM and wait; returns the exit code."""
        assert self.process is not None
        self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=60)

    def stop(self) -> None:
        """Best-effort teardown for test cleanup."""
        if self.process is None or self.process.poll() is not None:
            return
        try:
            self.client.shutdown()
            self.process.wait(timeout=30)
        except (ServiceError, subprocess.TimeoutExpired):
            self.process.kill()
            self.process.wait(timeout=30)

    def output(self) -> str:
        assert self.process is not None and self.process.stdout is not None
        return self.process.stdout.read()
