"""Ablations for the design choices DESIGN.md calls out.

1. **Epoch evaluator vs per-packet simulation** — the substitution that
   makes 110-node × 500 s runs feasible: quantify the speedup and verify
   agreement on a shared window.
2. **MRAI ablation (M = 0)** — the paper's central mechanism removed:
   convergence and looping collapse to processing-delay scale.
3. **Jitter ablation** — MRAI jitter off (deterministic timers): the
   qualitative behavior survives; jitter mainly decorrelates rounds.
4. **Processing-delay sweep** — with MRAI at 30 s, nodal delay is a
   second-order effect on looping (the paper's argument for why the MRAI
   timer dominates).
"""

import time

from _support import RESULTS_DIR

from repro.bgp import BgpConfig
from repro.dataplane import EpochEvaluator, PacketForwarder, sources_for
from repro.experiments import RunSettings, run_experiment, tdown_clique
from repro.util import render_table

WINDOW = 30.0


def _save(name, text):
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


def test_ablation_epoch_vs_perpacket(benchmark):
    """Same window, both engines: counts agree, epoch mode is far cheaper."""
    scenario = tdown_clique(6)
    config = BgpConfig(mrai=5.0)
    settings = RunSettings(ttl=32, packet_rate=20.0)
    state = {}

    def attach(network, failure_time):
        sources = sources_for(scenario.topology.nodes, 0, rate=20.0)
        forwarder = PacketForwarder(
            network.scheduler,
            scenario.topology,
            lambda n: network.nodes[n].fib.get(scenario.prefix),
            ttl=32,
        )
        forwarder.launch(sources, failure_time, failure_time + WINDOW)
        state.update(forwarder=forwarder, sources=sources, t0=failure_time)

    def run_with_packets():
        return run_experiment(
            scenario, config, settings=settings, seed=4, on_network_ready=attach
        )

    wall0 = time.perf_counter()
    run = benchmark.pedantic(run_with_packets, rounds=1, iterations=1)
    perpacket_wall = time.perf_counter() - wall0

    wall0 = time.perf_counter()
    epoch_report = EpochEvaluator(
        run.fib_log, scenario.prefix, state["sources"], ttl=32
    ).evaluate(state["t0"], state["t0"] + WINDOW)
    epoch_wall = time.perf_counter() - wall0
    exact = state["forwarder"].report

    rows = [
        ["per-packet", exact.packets_sent, exact.ttl_exhaustions, exact.delivered],
        ["epoch", epoch_report.packets_sent, epoch_report.ttl_exhaustions,
         epoch_report.delivered],
    ]
    table = render_table(
        ["engine", "packets", "ttl_exhaustions", "delivered"],
        rows,
        title="Ablation: epoch evaluation vs per-packet events",
    )
    _save(
        "ablation_dataplane",
        table
        + f"\n  epoch evaluation wall time: {epoch_wall * 1e3:.1f} ms "
        f"(full sim incl. packet events: {perpacket_wall * 1e3:.0f} ms)",
    )
    assert epoch_report.packets_sent == exact.packets_sent
    tolerance = max(3, int(0.02 * exact.packets_sent))
    assert abs(epoch_report.ttl_exhaustions - exact.ttl_exhaustions) <= tolerance


def test_ablation_mrai_zero(benchmark):
    """Removing the MRAI timer: faster convergence, but an update storm.

    Convergence does NOT collapse to milliseconds: the storm of exploration
    updates (an order of magnitude more messages) saturates the serialized
    per-node message processing, which is precisely why Griffin & Premore
    concluded the timer is necessary and why the paper treats the MRAI as
    load-bearing rather than simply harmful.
    """

    def run_pair():
        with_mrai = run_experiment(
            tdown_clique(8), BgpConfig(mrai=30.0), RunSettings(), seed=5
        ).result
        without = run_experiment(
            tdown_clique(8), BgpConfig(mrai=0.0), RunSettings(), seed=5
        ).result
        return with_mrai, without

    with_mrai, without = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    table = render_table(
        ["config", "convergence_s", "looping_s", "ttl_exhaustions", "updates"],
        [
            ["MRAI=30", with_mrai.convergence_time, with_mrai.overall_looping_duration,
             with_mrai.ttl_exhaustions, with_mrai.convergence.update_count],
            ["MRAI=0", without.convergence_time, without.overall_looping_duration,
             without.ttl_exhaustions, without.convergence.update_count],
        ],
        title="Ablation: the MRAI timer (clique-8 Tdown)",
    )
    _save("ablation_mrai", table)
    assert without.convergence_time < with_mrai.convergence_time
    assert without.overall_looping_duration < with_mrai.overall_looping_duration
    # The cost of removing it: an update storm (why MRAI exists, per [5]).
    assert without.convergence.update_count > 3 * with_mrai.convergence.update_count


def test_ablation_jitter(benchmark):
    """Deterministic (jitter-free) MRAI keeps the qualitative picture."""

    def run_pair():
        jittered = run_experiment(
            tdown_clique(8), BgpConfig(mrai=30.0), RunSettings(), seed=6
        ).result
        fixed = run_experiment(
            tdown_clique(8),
            BgpConfig(mrai=30.0, mrai_jitter=(1.0, 1.0)),
            RunSettings(),
            seed=6,
        ).result
        return jittered, fixed

    jittered, fixed = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    table = render_table(
        ["jitter", "convergence_s", "looping_s", "looping_ratio"],
        [
            ["0.75-1.0", jittered.convergence_time,
             jittered.overall_looping_duration, jittered.looping_ratio],
            ["none", fixed.convergence_time, fixed.overall_looping_duration,
             fixed.looping_ratio],
        ],
        title="Ablation: MRAI jitter (clique-8 Tdown)",
    )
    _save("ablation_jitter", table)
    for result in (jittered, fixed):
        assert result.overall_looping_duration > 0.5 * result.convergence_time


def test_ablation_processing_delay(benchmark):
    """At MRAI 30 s, scaling nodal delay 10x barely moves the metrics."""

    def run_sweep():
        rows = []
        for low, high in [(0.01, 0.05), (0.1, 0.5), (0.5, 1.0)]:
            result = run_experiment(
                tdown_clique(8),
                BgpConfig(mrai=30.0, processing_delay=(low, high)),
                RunSettings(),
                seed=7,
            ).result
            rows.append(
                [f"U[{low},{high}]", result.convergence_time,
                 result.overall_looping_duration, result.looping_ratio]
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = render_table(
        ["processing_delay", "convergence_s", "looping_s", "looping_ratio"],
        rows,
        title="Ablation: message processing delay under MRAI=30 (clique-8 Tdown)",
    )
    _save("ablation_processing_delay", table)
    convergences = [row[1] for row in rows]
    # 50x more nodal delay changes convergence by far less than 50x —
    # the MRAI timer, not the CPU, sets the time scale.
    assert max(convergences) < 3 * min(convergences)
