"""Link-state routing substrate (OSPF/IS-IS style), for the §2 comparison.

Completes the protocol triangle the paper situates BGP in: link state
(fast flooding, brief inconsistency), distance vector (:mod:`repro.dv`,
counting to infinity), and path vector (:mod:`repro.bgp`, the paper's
subject).  All three share the network substrate and the loop toolkit, so
their transient behavior is directly comparable.
"""

from .lsa import LinkStateAd, make_lsa
from .speaker import LinkStateSpeaker

__all__ = ["LinkStateAd", "LinkStateSpeaker", "make_lsa"]
