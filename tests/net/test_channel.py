"""Unit tests for repro.net.channel."""

import pytest

from repro.engine import Scheduler
from repro.errors import NetworkError
from repro.net import Channel


@pytest.fixture
def inbox():
    return []


@pytest.fixture
def channel(scheduler, inbox):
    return Channel(
        scheduler, src=1, dst=2, delay=0.5,
        deliver=lambda src, msg: inbox.append((scheduler.now, src, msg)),
    )


class TestDelivery:
    def test_message_arrives_after_delay(self, scheduler, channel, inbox):
        channel.send("hello")
        scheduler.run()
        assert inbox == [(0.5, 1, "hello")]

    def test_fifo_order(self, scheduler, channel, inbox):
        channel.send("a")
        scheduler.call_at(0.1, lambda: channel.send("b"))
        scheduler.run()
        assert [msg for _t, _s, msg in inbox] == ["a", "b"]

    def test_counters(self, scheduler, channel):
        channel.send("x")
        channel.send("y")
        assert channel.messages_sent == 2
        assert channel.messages_delivered == 0
        scheduler.run()
        assert channel.messages_delivered == 2

    def test_in_flight_count(self, scheduler, channel):
        channel.send("x")
        assert channel.in_flight == 1
        scheduler.run()
        assert channel.in_flight == 0

    def test_non_positive_delay_rejected(self, scheduler):
        with pytest.raises(NetworkError):
            Channel(scheduler, 0, 1, 0.0, lambda s, m: None)


class TestFailure:
    def test_send_on_down_channel_raises(self, scheduler, channel):
        channel.take_down()
        with pytest.raises(NetworkError, match="down"):
            channel.send("x")

    def test_take_down_drops_in_flight(self, scheduler, channel, inbox):
        channel.send("doomed")
        dropped = channel.take_down()
        scheduler.run()
        assert dropped == 1
        assert inbox == []

    def test_take_down_idempotent(self, channel):
        channel.send("x")
        assert channel.take_down() == 1
        assert channel.take_down() == 0

    def test_bring_up_restores_delivery(self, scheduler, channel, inbox):
        channel.take_down()
        channel.bring_up()
        channel.send("again")
        scheduler.run()
        assert [msg for _t, _s, msg in inbox] == ["again"]

    def test_messages_after_restore_not_ordered_behind_dropped(
        self, scheduler, channel, inbox
    ):
        channel.send("lost")
        channel.take_down()
        channel.bring_up()
        channel.send("kept")
        scheduler.run()
        assert [msg for _t, _s, msg in inbox] == ["kept"]
