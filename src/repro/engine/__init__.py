"""Discrete-event simulation engine.

This subpackage is the in-Python replacement for the SSFNET event kernel used
by the original study: a deterministic event heap (:class:`Scheduler`),
restartable timers (:class:`Timer`), a single-server router-CPU model
(:class:`SerialProcessor`), and named reproducible RNG streams
(:class:`RandomStreams`).
"""

from .event import Event, EventPriority
from .process import SerialProcessor
from .rng import RandomStreams
from .scheduler import Scheduler
from .timers import Timer

__all__ = [
    "Event",
    "EventPriority",
    "RandomStreams",
    "Scheduler",
    "SerialProcessor",
    "Timer",
]
