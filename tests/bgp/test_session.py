"""Tests for the BGP session layer (keepalives, hold timers, silent
failures)."""

import pytest

from repro.bgp import (
    AsPath,
    BgpConfig,
    BgpSpeaker,
    Keepalive,
    SessionManager,
)
from repro.engine import RandomStreams, Scheduler
from repro.errors import ConfigError
from repro.net import Network
from repro.topology import chain, ring

PREFIX = "dest"
SESSION_CONFIG = BgpConfig(
    mrai=1.0,
    processing_delay=(0.01, 0.05),
    hold_time=9.0,
    keepalive_interval=3.0,
)


def make_network(scheduler, topo, config=SESSION_CONFIG, seed=4):
    streams = RandomStreams(seed)
    return Network(
        topo,
        scheduler,
        lambda nid, sch: BgpSpeaker(nid, sch, config=config, streams=streams),
    )


class TestConfig:
    def test_sessions_disabled_by_default(self):
        assert not BgpConfig().sessions_enabled

    def test_effective_keepalive_defaults_to_third(self):
        config = BgpConfig(hold_time=9.0)
        assert config.sessions_enabled
        assert config.effective_keepalive == pytest.approx(3.0)

    def test_keepalive_must_be_shorter_than_hold(self):
        with pytest.raises(ConfigError):
            BgpConfig(hold_time=3.0, keepalive_interval=3.0)

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigError):
            BgpConfig(hold_time=-1.0)
        with pytest.raises(ConfigError):
            BgpConfig(keepalive_interval=-1.0)


class TestSessionManager:
    @pytest.fixture
    def events(self):
        return {"keepalives": [], "down": []}

    @pytest.fixture
    def manager(self, scheduler, events):
        return SessionManager(
            scheduler,
            hold_time=9.0,
            keepalive_interval=3.0,
            send_keepalive=lambda n: events["keepalives"].append(
                (scheduler.now, n)
            ),
            on_session_down=lambda n: events["down"].append((scheduler.now, n)),
        )

    def test_establish_is_idempotent(self, manager):
        manager.establish(1)
        manager.establish(1)
        assert manager.established(1)
        assert manager.established_count == 1

    def test_keepalives_sent_periodically(self, scheduler, manager, events):
        manager.establish(1)
        # Keep the peer's side of the session alive so the hold timer does
        # not cancel the keepalive schedule mid-test.
        scheduler.call_at(5.0, lambda: manager.message_received(1))
        scheduler.run(until=10.0)
        times = [t for t, _n in events["keepalives"]]
        assert times[:3] == [pytest.approx(3.0), pytest.approx(6.0), pytest.approx(9.0)]

    def test_hold_expires_without_messages(self, scheduler, manager, events):
        manager.establish(1)
        scheduler.run(until=20.0)
        assert events["down"][0] == (pytest.approx(9.0), 1)
        assert manager.sessions_lost == 1
        assert not manager.established(1)

    def test_messages_refresh_hold(self, scheduler, manager, events):
        manager.establish(1)
        for t in (5.0, 10.0, 15.0):
            scheduler.call_at(t, lambda: manager.message_received(1))
        scheduler.run(until=20.0)
        assert events["down"] == []  # refreshed at 15, expiry would be 24

    def test_teardown_stops_both_timers(self, scheduler, manager, events):
        manager.establish(1)
        manager.teardown(1)
        scheduler.run(until=30.0)
        assert events["keepalives"] == []
        assert events["down"] == []

    def test_teardown_all(self, scheduler, manager, events):
        manager.establish(1)
        manager.establish(2)
        manager.teardown_all()
        assert manager.established_count == 0
        scheduler.run(until=30.0)
        assert events["down"] == []

    def test_bad_parameters(self, scheduler):
        with pytest.raises(ConfigError):
            SessionManager(scheduler, 0.0, 1.0, lambda n: None, lambda n: None)
        with pytest.raises(ConfigError):
            SessionManager(scheduler, 5.0, 5.0, lambda n: None, lambda n: None)


class TestSilentFailureDetection:
    def test_silent_failure_detected_via_hold_timer(self, scheduler):
        """Fail the chain link silently: node 2 keeps its route for up to a
        hold time, then purges it."""
        network = make_network(scheduler, chain(3))
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run(until=30.0)
        assert network.node(2).best_route(PREFIX) is not None

        failure_time = scheduler.now
        network.fail_link(1, 2, silent=True)
        # Immediately afterwards nothing has changed at node 2.
        scheduler.run(until=failure_time + 1.0)
        assert network.node(2).best_route(PREFIX) is not None
        # After the hold time the session dies and the route goes.
        scheduler.run(until=failure_time + SESSION_CONFIG.hold_time + 2.0)
        assert network.node(2).best_route(PREFIX) is None
        assert network.node(2).sessions.sessions_lost >= 1

    def test_loud_failure_still_detected_instantly(self, scheduler):
        network = make_network(scheduler, chain(3))
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run(until=30.0)
        network.fail_link(1, 2, silent=False)
        scheduler.run(until=scheduler.now + 0.5)
        assert network.node(2).best_route(PREFIX) is None

    def test_detection_latency_extends_inconsistency(self, scheduler):
        """On a ring, a silent failure leaves stale forwarding pointing into
        the dead link for the whole hold window; loud failure repairs it
        immediately."""
        network = make_network(scheduler, ring(4))
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run(until=30.0)
        assert network.node(2).next_hop(PREFIX) in (1, 3)
        victim_hop = network.node(2).next_hop(PREFIX)
        other = 3 if victim_hop == 1 else 1

        failure_time = scheduler.now
        network.fail_link(2, victim_hop, silent=True)
        scheduler.run(until=failure_time + 2.0)
        # Still pointing into the dead link: stale forwarding.
        assert network.node(2).next_hop(PREFIX) == victim_hop
        scheduler.run(until=failure_time + SESSION_CONFIG.hold_time + 5.0)
        assert network.node(2).next_hop(PREFIX) == other

    def test_keepalives_do_not_count_as_updates(self, scheduler):
        from repro.bgp import is_update

        network = make_network(scheduler, chain(2))
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run(until=20.0)
        keepalives = network.trace.records(
            lambda r: isinstance(r.message, Keepalive)
        )
        assert keepalives, "expected keepalives on the wire"
        assert not any(is_update(r.message) for r in keepalives)

    def test_session_reestablishes_after_link_restore(self, scheduler):
        network = make_network(scheduler, chain(3))
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run(until=30.0)
        t0 = scheduler.now
        network.fail_link(1, 2, silent=True)
        scheduler.run(until=t0 + SESSION_CONFIG.hold_time + 3.0)
        assert network.node(2).best_route(PREFIX) is None
        network.restore_link(1, 2)
        scheduler.run(until=scheduler.now + 10.0)
        assert network.node(2).best_route(PREFIX) is not None
        assert network.node(2).sessions.established(1)
