"""Multi-prefix workloads: golden equivalence, Tagg runs, determinism.

Three contracts pin the prefix dimension as a *strict generalization*:

* an N=1 multi-prefix run (explicit ``originations``) is bit-identical —
  same trace/FIB/summary digest — to the legacy single-destination path;
* a multi-prefix Tagg sweep with the traffic matrix on is digest-identical
  under ``jobs=1`` and ``jobs=4``, and across repeat runs;
* the incremental decision cache agrees with the naive full scan at every
  speaker after multi-prefix aggregation churn.
"""

import pytest

from repro.analysis.determinism import fingerprint_run
from repro.bgp import BgpConfig
from repro.errors import ConfigError
from repro.experiments import RunSettings, factory_ref, sweep
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import (
    EventKind,
    Scenario,
    clique_tagg_trial,
    multiprefix_trial,
    tagg_clique,
    tdown_clique,
    tflap_bclique,
    with_explicit_originations,
)
from repro.experiments.spec import constant_config
from repro.topology import clique

FAST = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(failure_guard=0.5)
TRAFFIC = RunSettings(failure_guard=0.5, traffic_matrix=True)
JOBS = 4


def digest_of(scenario, config=FAST, settings=SETTINGS, seed=0):
    run = run_experiment(
        scenario, config, settings=settings, seed=seed, keep_network=True
    )
    return fingerprint_run(run).digest


class TestGoldenEquivalence:
    """Explicit N=1 originations reproduce the legacy digest bit-for-bit."""

    def test_tdown_digest_identical(self):
        legacy = tdown_clique(5)
        multi = with_explicit_originations(legacy)
        assert multi.effective_originations == legacy.effective_originations
        assert digest_of(legacy) == digest_of(multi)

    def test_tflap_digest_identical(self):
        legacy = tflap_bclique(4, period=3.0, count=2)
        multi = with_explicit_originations(legacy)
        assert digest_of(legacy) == digest_of(multi)

    def test_multiprefix_trial_matches_legacy_family(self):
        assert digest_of(multiprefix_trial(5, 0, base="tdown", size=5)) == (
            digest_of(tdown_clique(5))
        )

    def test_legacy_summary_has_no_traffic_keys(self):
        run = run_experiment(tdown_clique(4), FAST, SETTINGS, seed=0)
        keys = set(run.result.summary_row())
        assert not any(k.startswith("traffic_") for k in keys)


class TestScenarioValidation:
    def test_tagg_requires_blocks(self):
        with pytest.raises(ConfigError):
            Scenario(
                name="bad",
                topology=clique(3),
                destination=0,
                event=EventKind.TAGG,
            )

    def test_non_tagg_rejects_agg_fields(self):
        good = tagg_clique(3, prefixes=4)
        with pytest.raises(ConfigError):
            Scenario(
                name="bad",
                topology=clique(3),
                destination=0,
                event=EventKind.TDOWN,
                agg_blocks=good.agg_blocks,
                agg_hold=good.agg_hold,
            )

    def test_origination_nodes_must_exist(self):
        with pytest.raises(ConfigError):
            Scenario(
                name="bad",
                topology=clique(3),
                destination=0,
                event=EventKind.TDOWN,
                originations=((9, "dest"),),
            )

    def test_focus_pair_must_be_originated(self):
        with pytest.raises(ConfigError):
            Scenario(
                name="bad",
                topology=clique(3),
                destination=0,
                event=EventKind.TDOWN,
                prefix="dest",
                originations=((1, "other"),),
            )

    def test_tagg_family_is_well_formed(self):
        scenario = tagg_clique(4, prefixes=8, origins=2, seed=1)
        assert len(scenario.effective_originations) == 8
        assert len(scenario.agg_blocks) == 2
        origins = {block.origin for block in scenario.agg_blocks}
        assert origins <= {0, 1}
        # Focus pair: first block's first specific at its origin.
        assert (scenario.destination, scenario.prefix) in (
            scenario.effective_originations
        )
        by_prefix = scenario.origins_by_prefix()
        for node, prefix in scenario.effective_originations:
            assert node in by_prefix[prefix]


class TestTaggRun:
    @pytest.fixture(scope="class")
    def run(self):
        return run_experiment(
            tagg_clique(4, prefixes=8, origins=2, hold=5.0),
            FAST,
            TRAFFIC,
            seed=0,
            keep_network=True,
        )

    def test_converges_and_reports_traffic(self, run):
        assert run.converged
        traffic = run.result.traffic
        assert traffic is not None
        assert traffic.offered > 0
        assert (
            traffic.delivered + traffic.blackholed + traffic.looped
            == traffic.offered
        )

    def test_summary_gains_traffic_keys(self, run):
        row = run.result.summary_row()
        assert "traffic_looped_fraction" in row
        assert "traffic_offered" in row
        assert row["traffic_looped_fraction"] == pytest.approx(
            run.result.traffic.looped_fraction
        )

    def test_aggregation_round_trips_origins(self, run):
        # After deaggregation the origins hold exactly the steady-state
        # specifics again — no cover left behind.
        for block in run.scenario.agg_blocks:
            speaker = run.network.nodes[block.origin]
            assert block.cover not in speaker.origins
            for specific in block.specifics:
                assert specific in speaker.origins

    def test_repeat_run_digest_identical(self, run):
        again = run_experiment(
            run.scenario, FAST, TRAFFIC, seed=0, keep_network=True
        )
        assert fingerprint_run(again).digest == fingerprint_run(run).digest


class TestCrossProcessDeterminism:
    """jobs=1 and jobs=4 Tagg sweeps must be digest-identical."""

    @pytest.fixture(scope="class")
    def pair(self):
        make_scenario = factory_ref(
            clique_tagg_trial, size=4, origins=2, hold=5.0
        )
        make_config = factory_ref(constant_config, config=FAST)
        kwargs = dict(seeds=(0, 1), settings=TRAFFIC, digests=True)
        sequential = sweep([4, 8], make_scenario, make_config, **kwargs)
        parallel = sweep(
            [4, 8], make_scenario, make_config, jobs=JOBS, **kwargs
        )
        return sequential, parallel

    def test_digests_identical(self, pair):
        sequential, parallel = pair
        seq = [r.fingerprint.digest for p in sequential for r in p.runs]
        par = [r.fingerprint.digest for p in parallel for r in p.runs]
        assert seq == par
        assert len(seq) == 4

    def test_traffic_metrics_in_summary_lines(self, pair):
        sequential, _ = pair
        line = sequential[0].runs[0].fingerprint.summary_line
        assert "traffic_looped_fraction=" in line

    def test_aggregate_metrics_identical(self, pair):
        sequential, parallel = pair
        assert [p.metrics() for p in sequential] == [
            p.metrics() for p in parallel
        ]


class TestAcceptance256:
    """The acceptance bar: >= 256 prefixes, bit-identical across jobs."""

    def test_256_prefix_sweep_digest_identical_across_jobs(self):
        make_scenario = factory_ref(
            clique_tagg_trial, size=4, origins=2, hold=5.0
        )
        make_config = factory_ref(constant_config, config=FAST)
        kwargs = dict(seeds=(0,), settings=TRAFFIC, digests=True)
        sequential = sweep([256], make_scenario, make_config, **kwargs)
        parallel = sweep(
            [256], make_scenario, make_config, jobs=JOBS, **kwargs
        )
        seq_run = sequential[0].runs[0]
        par_run = parallel[0].runs[0]
        assert seq_run.fingerprint.digest == par_run.fingerprint.digest
        assert "traffic_looped_fraction=" in seq_run.fingerprint.summary_line
        # Repeat the sequential sweep: byte-identical again.
        again = sweep([256], make_scenario, make_config, **kwargs)
        assert again[0].runs[0].fingerprint.digest == seq_run.fingerprint.digest


class TestDecisionCacheUnderMultiPrefixChurn:
    def test_cache_matches_naive_after_tagg(self):
        # sanitize=True cross-checks cached-vs-naive at every decision
        # during the run (RibCoherenceSanitizer); the sweep below then
        # re-verifies the final state for every (speaker, prefix).
        run = run_experiment(
            tagg_clique(4, prefixes=8, origins=2, hold=5.0, seed=2),
            FAST,
            RunSettings(failure_guard=0.5, sanitize=True),
            seed=0,
            keep_network=True,
        )
        assert run.converged
        network = run.network
        for node_id in sorted(network.nodes):
            speaker = network.nodes[node_id]
            for prefix in run.scenario.all_prefixes:
                assert speaker._select_best(prefix) == (
                    speaker._select_best_naive(prefix)
                )
            speaker.check_invariants()
