"""Figure 7: TTL exhaustions and looping ratio vs MRAI value.

Paper shape (Observation 2): exhaustion counts are linearly proportional
to M; the looping ratio stays almost constant across the sweep.
"""

from _support import record

from repro.experiments.figures import figure7a, figure7b

MRAI_VALUES = (7.5, 15.0, 30.0, 45.0, 60.0)


def test_fig7a_tdown_clique_mrai(benchmark):
    figure = benchmark.pedantic(
        lambda: figure7a(mrai_values=MRAI_VALUES, clique_size=10, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)


def test_fig7b_tlong_bclique_mrai(benchmark):
    figure = benchmark.pedantic(
        lambda: figure7b(mrai_values=MRAI_VALUES, bclique_size=8, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
