"""BGP control-plane messages.

The two message kinds that drive convergence dynamics — announcements
(UPDATE with NLRI) and withdrawals (UPDATE with withdrawn routes) — plus the
two session-management messages the churn experiments need: KEEPALIVE
(liveness when the session layer is enabled) and OPEN (the handshake that
re-establishes a session after a reset, triggering the RFC 1771 initial
full-table exchange).  NOTIFICATION is still abstracted away.

Prefixes are opaque strings (e.g. ``"d0"``); the simulations use one prefix,
but the speaker handles any number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .path import AsPath

Prefix = str
"""Type alias for destination identifiers."""


@dataclass(frozen=True, slots=True)
class Announcement:
    """An UPDATE advertising ``path`` as the sender's route to ``prefix``.

    ``path`` is the path *as sent*: the sender's own AS number is the head.
    """

    prefix: Prefix
    path: AsPath

    def __post_init__(self) -> None:
        if self.path.is_empty:
            raise ValueError("an announcement must carry a non-empty AS path")

    @property
    def sender(self) -> int:
        """The advertising AS (head of the path)."""
        assert self.path.head is not None
        return self.path.head

    def __repr__(self) -> str:
        return f"Announce[{self.prefix} via {self.path!r}]"


@dataclass(frozen=True, slots=True)
class Withdrawal:
    """An UPDATE withdrawing the sender's previously-announced route."""

    prefix: Prefix

    def __repr__(self) -> str:
        return f"Withdraw[{self.prefix}]"


@dataclass(frozen=True, slots=True)
class Keepalive:
    """A KEEPALIVE: refreshes the receiver's hold timer, carries no routes.

    Only exchanged when the speaker's session layer is enabled
    (``BgpConfig.hold_time > 0``); the paper's experiments model instant
    interface-level failure detection and never need them.
    """

    #: Keepalives are pure background heartbeat: their delivery and
    #: processing events are scheduled as housekeeping, so an armed
    #: keepalive schedule never blocks run-to-quiescence.
    HOUSEKEEPING = True

    def __repr__(self) -> str:
        return "Keepalive"


@dataclass(frozen=True, slots=True)
class Open:
    """An OPEN: (re-)establishes the session with the receiving peer.

    Exchanged only by the ConnectRetry machinery after a session loss (the
    boot-time peering is implicit, as in the paper).  ``echo=True`` marks
    the passive reply to a received OPEN, so crossing handshakes terminate
    instead of echoing forever.
    """

    echo: bool = False

    def __repr__(self) -> str:
        return f"Open[{'echo' if self.echo else 'syn'}]"


@dataclass(frozen=True, slots=True)
class UpdateBatch:
    """One UPDATE carrying many prefixes (RFC 4271 packing).

    Real UPDATEs carry a withdrawn-routes list plus one set of path
    attributes shared by an NLRI list; this simulator variant generalizes
    the NLRI side to per-prefix paths so one message can flush a whole
    MRAI round.  Produced only when ``BgpConfig.batch_updates`` is on;
    receivers unpack it into the ordinary per-prefix handlers (withdrawn
    first, then NLRI), so batching changes message count and packing —
    never routing outcomes.

    Both tuples are sorted by prefix and duplicate-free, and a prefix never
    appears on both sides — the sender's last-wins queue guarantees it and
    ``__post_init__`` enforces it, which keeps the wire form canonical (and
    digest-stable) no matter what order updates were queued in.
    """

    withdrawn: Tuple[Prefix, ...] = field(default=())
    nlri: Tuple[Tuple[Prefix, AsPath], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.withdrawn and not self.nlri:
            raise ValueError("an update batch must carry at least one route")
        nlri_prefixes = tuple(prefix for prefix, _path in self.nlri)
        if list(self.withdrawn) != sorted(set(self.withdrawn)):
            raise ValueError(f"withdrawn list not canonical: {self.withdrawn!r}")
        if list(nlri_prefixes) != sorted(set(nlri_prefixes)):
            raise ValueError(f"nlri list not canonical: {nlri_prefixes!r}")
        overlap = set(self.withdrawn) & set(nlri_prefixes)
        if overlap:
            raise ValueError(f"prefixes both withdrawn and announced: {sorted(overlap)}")
        heads = {path.head for _prefix, path in self.nlri}
        if len(heads) > 1:
            raise ValueError(f"nlri paths name different senders: {sorted(heads)}")
        for _prefix, path in self.nlri:
            if path.is_empty:
                raise ValueError("an update batch NLRI path must be non-empty")

    @property
    def size(self) -> int:
        """Total routes carried (withdrawn + announced)."""
        return len(self.withdrawn) + len(self.nlri)

    @property
    def sender(self) -> int:
        """The advertising AS (head of any NLRI path).

        Only defined for batches that announce something; pure-withdrawal
        batches carry no path and the transport layer's ``src`` is
        authoritative.
        """
        if not self.nlri:
            raise ValueError("a pure-withdrawal batch has no embedded sender")
        head = self.nlri[0][1].head
        assert head is not None
        return head

    def __repr__(self) -> str:
        parts = []
        if self.withdrawn:
            parts.append(f"withdraw {list(self.withdrawn)}")
        if self.nlri:
            parts.append(
                "announce " + ", ".join(f"{p} via {path!r}" for p, path in self.nlri)
            )
        return f"Batch[{'; '.join(parts)}]"


def is_update(message: object) -> bool:
    """True for the messages that count toward convergence time.

    The paper measures convergence as "the time the last BGP update message
    is sent"; announcements, withdrawals, and batched UPDATEs all count
    (OPENs and KEEPALIVEs do not).
    """
    return isinstance(message, (Announcement, Withdrawal, UpdateBatch))
