"""Tests for combining enhancement variants."""

import pytest

from repro.bgp import BgpConfig, combine
from repro.errors import ConfigError
from repro.experiments import RunSettings, run_experiment, tdown_clique


class TestCombine:
    def test_single_name_equals_variant(self):
        assert combine(["ssld"], mrai=5.0) == BgpConfig(mrai=5.0, ssld=True)

    def test_pair(self):
        config = combine(["ssld", "ghost-flushing"])
        assert config.ssld and config.ghost_flushing
        assert not config.wrate and not config.assertion
        assert config.variant_name == "ssld+ghost-flushing"

    def test_standard_is_identity(self):
        assert combine(["standard"]) == BgpConfig()
        assert combine([]) == BgpConfig()

    def test_duplicates_tolerated(self):
        assert combine(["ssld", "ssld"]) == combine(["ssld"])

    def test_all_four_together(self):
        config = combine(["ssld", "wrate", "assertion", "ghost-flushing"])
        assert all(
            (config.ssld, config.wrate, config.assertion, config.ghost_flushing)
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown BGP variant"):
            combine(["ssld", "hyperdrive"])

    def test_mrai_passthrough(self):
        assert combine(["assertion"], mrai=7.0).mrai == 7.0


class TestCombinedRuns:
    def test_assertion_plus_ghost_flushing_runs_clean(self):
        config = combine(["assertion", "ghost-flushing"], mrai=2.0)
        config = BgpConfig(
            mrai=2.0,
            processing_delay=(0.01, 0.05),
            assertion=True,
            ghost_flushing=True,
        )
        run = run_experiment(
            tdown_clique(6),
            config,
            settings=RunSettings(failure_guard=0.5),
            seed=1,
            keep_network=True,
        )
        for node in run.network.nodes.values():
            node.check_invariants()
        # Both mechanisms active: the combination should loop no more than
        # the better of the two alone would (sanity, not a paper claim).
        assert run.result.ttl_exhaustions <= 100

    def test_all_four_combined_converges(self):
        config = BgpConfig(
            mrai=2.0,
            processing_delay=(0.01, 0.05),
            ssld=True,
            wrate=True,
            assertion=True,
            ghost_flushing=True,
        )
        run = run_experiment(
            tdown_clique(5),
            config,
            settings=RunSettings(failure_guard=0.5),
            seed=2,
            keep_network=True,
        )
        assert run.converged
        for node in run.network.nodes.values():
            node.check_invariants()
            assert node.best_route("dest") is None
