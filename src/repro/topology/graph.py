"""The AS-level topology abstraction.

A :class:`Topology` is an undirected graph whose vertices are Autonomous
System numbers (plain ints, one router per AS, as in the paper's simulations)
and whose edges are inter-AS adjacencies with a propagation delay.  It is a
small, dependency-free structure; conversion helpers to/from ``networkx`` are
provided for analysis code that wants graph algorithms.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import TopologyError

DEFAULT_LINK_DELAY = 0.002
"""Per-link propagation delay in seconds (2 ms, the paper's setting)."""


class Topology:
    """An undirected AS-level graph with per-link delays.

    Nodes are non-negative integers.  Edges are unordered pairs; adding an
    existing edge updates its delay.  The class is deliberately mutable —
    failure scenarios remove edges mid-simulation via the network layer, but
    the topology object itself stays the *intended* graph; the live up/down
    state belongs to :class:`repro.net.network.Network`.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._adjacency: Dict[int, Dict[int, float]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node: int) -> None:
        """Add an isolated node (no-op if present)."""
        if node < 0:
            raise TopologyError(f"node ids must be non-negative, got {node}")
        self._adjacency.setdefault(node, {})

    def add_edge(self, u: int, v: int, delay: float = DEFAULT_LINK_DELAY) -> None:
        """Add (or re-delay) the undirected edge ``{u, v}``."""
        if u == v:
            raise TopologyError(f"self-loop edge ({u}, {v}) is not allowed")
        if delay <= 0:
            raise TopologyError(f"link delay must be positive, got {delay}")
        self.add_node(u)
        self.add_node(v)
        self._adjacency[u][v] = delay
        self._adjacency[v][u] = delay

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge ``{u, v}``; raises if absent."""
        if not self.has_edge(u, v):
            raise TopologyError(f"edge ({u}, {v}) not in topology")
        del self._adjacency[u][v]
        del self._adjacency[v][u]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> List[int]:
        """All node ids in ascending order."""
        return sorted(self._adjacency)

    @property
    def num_nodes(self) -> int:
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def has_node(self, node: int) -> bool:
        return node in self._adjacency

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adjacency and v in self._adjacency[u]

    def neighbors(self, node: int) -> List[int]:
        """Neighbors of ``node`` in ascending order (deterministic walks)."""
        try:
            return sorted(self._adjacency[node])
        except KeyError:
            raise TopologyError(f"node {node} not in topology") from None

    def degree(self, node: int) -> int:
        if node not in self._adjacency:
            raise TopologyError(f"node {node} not in topology")
        return len(self._adjacency[node])

    def link_delay(self, u: int, v: int) -> float:
        """Propagation delay of edge ``{u, v}`` in seconds."""
        if not self.has_edge(u, v):
            raise TopologyError(f"edge ({u}, {v}) not in topology")
        return self._adjacency[u][v]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, delay)`` with u < v."""
        for u in sorted(self._adjacency):
            for v in sorted(self._adjacency[u]):
                if u < v:
                    yield (u, v, self._adjacency[u][v])

    def degree_sequence(self) -> List[int]:
        """Degrees of all nodes, ascending."""
        return sorted(len(nbrs) for nbrs in self._adjacency.values())

    def lowest_degree_nodes(self, count: int = 1) -> List[int]:
        """The ``count`` nodes with smallest degree (ties: smaller id first).

        The paper picks destination ASes "randomly chosen among the nodes
        with the lowest degrees"; experiment code samples from this list.
        """
        ranked = sorted(self._adjacency, key=lambda n: (len(self._adjacency[n]), n))
        return ranked[:count]

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """True when every node can reach every other node."""
        if not self._adjacency:
            return True
        return len(self.component_of(next(iter(self._adjacency)))) == self.num_nodes

    def component_of(self, start: int, without_edge: Optional[Tuple[int, int]] = None) -> Set[int]:
        """Nodes reachable from ``start``, optionally ignoring one edge.

        ``without_edge`` lets scenario code ask "would removing this link
        partition the destination?" without mutating the topology.
        """
        if start not in self._adjacency:
            raise TopologyError(f"node {start} not in topology")
        banned = frozenset()
        if without_edge is not None:
            a, b = without_edge
            banned = frozenset(((a, b), (b, a)))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nbr in self._adjacency[node]:
                if (node, nbr) in banned:
                    continue
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return seen

    def is_cut_edge(self, u: int, v: int) -> bool:
        """True when removing ``{u, v}`` disconnects the graph."""
        if not self.has_edge(u, v):
            raise TopologyError(f"edge ({u}, {v}) not in topology")
        return v not in self.component_of(u, without_edge=(u, v))

    # ------------------------------------------------------------------
    # Interop & misc
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Topology":
        """An independent deep copy."""
        dup = Topology(name or self.name)
        for node in self._adjacency:
            dup.add_node(node)
        for u, v, delay in self.edges():
            dup.add_edge(u, v, delay)
        return dup

    def relabeled(self, mapping: Dict[int, int], name: Optional[str] = None) -> "Topology":
        """A copy with node ids renamed through ``mapping`` (must be 1:1)."""
        if len(set(mapping.values())) != len(mapping):
            raise TopologyError("relabeling mapping is not injective")
        dup = Topology(name or f"{self.name}-relabeled")
        for node in self._adjacency:
            dup.add_node(mapping.get(node, node))
        for u, v, delay in self.edges():
            dup.add_edge(mapping.get(u, u), mapping.get(v, v), delay)
        return dup

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` (delay stored as edge weight)."""
        import networkx as nx

        graph = nx.Graph(name=self.name)
        graph.add_nodes_from(self._adjacency)
        graph.add_weighted_edges_from(self.edges(), weight="delay")
        return graph

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        name: str = "topology",
        delay: float = DEFAULT_LINK_DELAY,
    ) -> "Topology":
        """Build a topology from an iterable of ``(u, v)`` pairs."""
        topo = cls(name)
        for u, v in edges:
            topo.add_edge(u, v, delay)
        return topo

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Topology {self.name!r} n={self.num_nodes} m={self.num_edges}>"
