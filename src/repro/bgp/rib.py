"""The three BGP routing information bases.

* :class:`AdjRibIn` — per-neighbor copies of "the most recent paths received
  from each of its neighbors" (paper §3); this is what path exploration
  walks through after a failure.
* :class:`LocRib` — the selected best route per prefix.
* :class:`AdjRibOut` — what was last *sent* to each neighbor, used both to
  suppress duplicate advertisements ("the route to each destination is
  advertised only once; subsequent updates are sent only upon route
  changes") and as the reference point for Ghost Flushing's
  "changed to a longer path" test.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .messages import Prefix
from .path import AsPath
from .route import Route

PreferenceKey = Callable[[Route], object]
"""A total-order key over routes; smaller wins (see
:meth:`repro.bgp.policy.RoutingPolicy.preference_key`)."""


class AdjRibIn:
    """Routes received from neighbors, keyed ``(neighbor, prefix)``.

    When constructed with a ``preference_key`` the RIB additionally keeps an
    **incremental ranking** per prefix: a list of ``(key, neighbor, route)``
    entries held sorted across mutations, so the decision process reads its
    winner off the front instead of re-scanning and re-keying every
    candidate on every UPDATE.  Only the changed peer's entry is re-ranked
    (one removal plus one bisect insertion).  The ranking's tie-break is the
    neighbor id, ascending — exactly the order :meth:`candidates` yields —
    so the cached winner is always the route the naive full scan would pick
    (:meth:`repro.bgp.decision.DecisionProcess.select_naive` cross-checks
    this under ``--sanitize``).
    """

    def __init__(self, preference_key: Optional[PreferenceKey] = None) -> None:
        self._routes: Dict[int, Dict[Prefix, Route]] = {}
        self._key = preference_key
        # prefix -> sorted [(key, neighbor, route), ...]; maintained only
        # when a preference key was supplied.
        self._ranked: Dict[Prefix, List[Tuple[object, int, Route]]] = {}

    @property
    def ranked(self) -> bool:
        """True when the incremental per-prefix ranking is maintained."""
        return self._key is not None

    def put(self, neighbor: int, route: Route) -> None:
        """Store/replace the route from ``neighbor`` for ``route.prefix``."""
        by_prefix = self._routes.setdefault(neighbor, {})
        old = by_prefix.get(route.prefix)
        by_prefix[route.prefix] = route
        if self._key is not None:
            entries = self._ranked.setdefault(route.prefix, [])
            if old is not None:
                entries.remove((self._key(old), neighbor, old))
            insort(entries, (self._key(route), neighbor, route))

    def get(self, neighbor: int, prefix: Prefix) -> Optional[Route]:
        return self._routes.get(neighbor, {}).get(prefix)

    def remove(self, neighbor: int, prefix: Prefix) -> Optional[Route]:
        """Drop and return the stored route, or ``None`` if absent."""
        by_prefix = self._routes.get(neighbor)
        if not by_prefix:
            return None
        route = by_prefix.pop(prefix, None)
        if route is not None and self._key is not None:
            self._unrank(neighbor, prefix, route)
        return route

    def _unrank(self, neighbor: int, prefix: Prefix, route: Route) -> None:
        entries = self._ranked[prefix]
        entries.remove((self._key(route), neighbor, route))
        if not entries:
            del self._ranked[prefix]

    def best(
        self,
        prefix: Prefix,
        usable: Optional[Callable[[Route], bool]] = None,
    ) -> Optional[Route]:
        """The highest-ranked (usable) route for ``prefix``, or ``None``.

        Only available on a ranked RIB; O(1) without a ``usable`` filter,
        O(suppressed prefix-candidates) with one.
        """
        entries = self._ranked.get(prefix)
        if not entries:
            return None
        if usable is None:
            return entries[0][2]
        for _key, _neighbor, route in entries:
            if usable(route):
                return route
        return None

    def drop_neighbor(self, neighbor: int) -> List[Prefix]:
        """Forget everything from ``neighbor`` (session down).

        Returns the prefixes that lost a candidate, so the caller can re-run
        the decision process for exactly those.
        """
        by_prefix = self._routes.pop(neighbor, {})
        if self._key is not None:
            for prefix in by_prefix:
                self._unrank(neighbor, prefix, by_prefix[prefix])
        return sorted(by_prefix)

    def candidates(self, prefix: Prefix) -> List[Route]:
        """All stored routes for ``prefix``, neighbor-id order (deterministic)."""
        found = []
        for neighbor in sorted(self._routes):
            route = self._routes[neighbor].get(prefix)
            if route is not None:
                found.append(route)
        return found

    def neighbors_with(self, prefix: Prefix) -> List[int]:
        """Neighbors currently contributing a route for ``prefix``."""
        return [n for n in sorted(self._routes) if prefix in self._routes[n]]

    def entries(self) -> Iterator[Tuple[int, Route]]:
        """All ``(neighbor, route)`` pairs, deterministic order."""
        for neighbor in sorted(self._routes):
            for prefix in sorted(self._routes[neighbor]):
                yield neighbor, self._routes[neighbor][prefix]

    def __len__(self) -> int:
        return sum(len(v) for v in self._routes.values())


class LocRib:
    """The best route per prefix, as selected by the decision process."""

    def __init__(self) -> None:
        self._best: Dict[Prefix, Route] = {}

    def get(self, prefix: Prefix) -> Optional[Route]:
        return self._best.get(prefix)

    def set(self, route: Route) -> None:
        self._best[route.prefix] = route

    def remove(self, prefix: Prefix) -> Optional[Route]:
        return self._best.pop(prefix, None)

    def prefixes(self) -> List[Prefix]:
        return sorted(self._best)

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._best


@dataclass(frozen=True, slots=True)
class SentState:
    """What a speaker last told one neighbor about one prefix.

    ``path`` is the advertised path (speaker's AS at the head) or ``None``
    after a withdrawal / before any advertisement.
    """

    path: Optional[AsPath]

    @property
    def is_withdrawn(self) -> bool:
        return self.path is None


NOTHING_SENT = SentState(path=None)


class AdjRibOut:
    """Last advertisement per ``(neighbor, prefix)``."""

    def __init__(self) -> None:
        self._sent: Dict[int, Dict[Prefix, SentState]] = {}

    def last_sent(self, neighbor: int, prefix: Prefix) -> SentState:
        """What the neighbor currently believes we advertised.

        Before any message this is :data:`NOTHING_SENT`, which compares equal
        to the state after an explicit withdrawal — correctly so, since in
        both cases the neighbor holds no route from us.
        """
        return self._sent.get(neighbor, {}).get(prefix, NOTHING_SENT)

    def record_announcement(self, neighbor: int, prefix: Prefix, path: AsPath) -> None:
        self._sent.setdefault(neighbor, {})[prefix] = SentState(path=path)

    def record_withdrawal(self, neighbor: int, prefix: Prefix) -> None:
        self._sent.setdefault(neighbor, {})[prefix] = SentState(path=None)

    def drop_neighbor(self, neighbor: int) -> None:
        """Forget the neighbor entirely (session down)."""
        self._sent.pop(neighbor, None)

    def advertised_prefixes(self, neighbor: int) -> List[Prefix]:
        """Prefixes for which the neighbor holds a live advertisement."""
        by_prefix = self._sent.get(neighbor, {})
        return sorted(p for p, state in by_prefix.items() if not state.is_withdrawn)
