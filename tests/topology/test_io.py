"""Unit tests for topology edge-list I/O."""

import io

import pytest

from repro.errors import TopologyError
from repro.topology import (
    DEFAULT_LINK_DELAY,
    clique,
    dump_edge_list,
    dumps_edge_list,
    load_edge_list,
)


class TestLoad:
    def test_basic_parse(self):
        topo = load_edge_list(io.StringIO("0 1\n1 2\n"))
        assert topo.num_nodes == 3
        assert topo.has_edge(0, 1)
        assert topo.link_delay(0, 1) == DEFAULT_LINK_DELAY

    def test_explicit_delay(self):
        topo = load_edge_list(io.StringIO("0 1 0.05\n"))
        assert topo.link_delay(0, 1) == 0.05

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\n0 1  # trailing comment\n"
        topo = load_edge_list(io.StringIO(text))
        assert topo.num_edges == 1

    def test_malformed_line_reports_lineno(self):
        with pytest.raises(TopologyError, match=":2:"):
            load_edge_list(io.StringIO("0 1\n0 1 2 3\n"))

    def test_non_numeric_rejected(self):
        with pytest.raises(TopologyError):
            load_edge_list(io.StringIO("a b\n"))

    def test_empty_input_rejected(self):
        with pytest.raises(TopologyError, match="no edges"):
            load_edge_list(io.StringIO("# nothing\n"))

    def test_load_from_path(self, tmp_path):
        path = tmp_path / "topo.txt"
        path.write_text("0 1\n1 2\n")
        topo = load_edge_list(path)
        assert topo.num_edges == 2


class TestRoundTrip:
    def test_dumps_then_load_preserves_graph(self):
        original = clique(5)
        restored = load_edge_list(io.StringIO(dumps_edge_list(original)))
        assert restored == original

    def test_dump_to_file_roundtrip(self, tmp_path):
        original = clique(4)
        path = tmp_path / "clique.txt"
        dump_edge_list(original, path)
        assert load_edge_list(path) == original

    def test_non_default_delay_round_trips(self):
        from repro.topology import Topology

        original = Topology.from_edges([(0, 1)], delay=0.5)
        restored = load_edge_list(io.StringIO(dumps_edge_list(original)))
        assert restored.link_delay(0, 1) == 0.5
