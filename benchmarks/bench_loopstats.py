"""Extension study: statistics of individual loops (the paper's §6 plan).

"As our next steps, we plan to examine route change traces to measure the
statistics of individual loops such as the loop size and duration."  This
benchmark performs that measurement on the reproduced convergence events
and compares the shape against the measurement literature the paper cites:
Hengartner et al. found that on a real backbone more than half of observed
loops involved only two nodes.
"""

from _support import RESULTS_DIR

from repro.bgp import BgpConfig
from repro.core import LoopStatistics
from repro.experiments import (
    RunSettings,
    run_experiment,
    tdown_clique,
    tdown_internet,
    tlong_bclique,
)
from repro.util import render_table


def collect(make_scenario, seeds):
    parts = []
    for seed in seeds:
        run = run_experiment(
            make_scenario(seed), BgpConfig.standard(30.0), RunSettings(), seed=seed
        )
        parts.append(
            LoopStatistics.from_intervals(
                run.result.loop_intervals, failure_time=run.failure_time
            )
        )
    return LoopStatistics.merge(parts)


def test_individual_loop_statistics(benchmark):
    def measure():
        return {
            "tdown clique-12": collect(lambda s: tdown_clique(12), (0, 1)),
            "tlong b-clique-8": collect(lambda s: tlong_bclique(8), (0, 1)),
            "tdown internet-75": collect(
                lambda s: tdown_internet(75, seed=s), (0, 1)
            ),
        }

    stats_by_scenario = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for label, stats in stats_by_scenario.items():
        assert stats.count > 0, f"{label}: expected loops"
        rows.append(
            [
                label,
                stats.count,
                stats.two_node_share(),
                stats.duration_percentile(50),
                stats.duration_percentile(90),
                stats.duration_summary().maximum,
                max(stats.sizes()),
            ]
        )
    table = render_table(
        ["scenario", "loops", "2node_share", "p50_life_s", "p90_life_s",
         "max_life_s", "max_size"],
        rows,
        title="Individual-loop statistics (MRAI 30s)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "loop_statistics.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)

    for label, stats in stats_by_scenario.items():
        # Hengartner et al.'s backbone measurement: 2-node loops dominate.
        # That holds on the internet-like and B-Clique scenarios; dense
        # full meshes (clique Tdown) grow longer cycles, so the claim is
        # checked only where the topology resembles a real backbone.
        if "clique-12" not in label:
            assert stats.two_node_share() >= 0.5, (label, stats.size_histogram())
        # No single loop outlives the §3.2 worst-case bound for its size.
        for interval in stats.intervals:
            bound = (interval.size - 1) * 30.0
            assert interval.duration <= bound + 2.0, (label, interval)
