"""Unit tests for routing policies."""

import pytest

from repro.bgp import (
    AsPath,
    NoTransitForPrefix,
    PreferNeighbor,
    Route,
    ShortestPathPolicy,
    local_route,
)


def route_via(neighbor, *tail, prefix="d", local_pref=100):
    return Route(
        prefix=prefix,
        path=AsPath((neighbor,) + tail),
        next_hop=neighbor,
        local_pref=local_pref,
    )


class TestShortestPathPolicy:
    def test_shorter_path_preferred(self):
        policy = ShortestPathPolicy()
        short = route_via(9, 0)
        long = route_via(2, 7, 0)
        assert policy.preference_key(short) < policy.preference_key(long)

    def test_tie_broken_by_smaller_next_hop(self):
        policy = ShortestPathPolicy()
        low = route_via(2, 0)
        high = route_via(9, 0)
        assert policy.preference_key(low) < policy.preference_key(high)

    def test_local_route_beats_everything(self):
        policy = ShortestPathPolicy()
        assert policy.preference_key(local_route("d")) < policy.preference_key(
            route_via(2, 0)
        )

    def test_higher_local_pref_wins_over_shorter_path(self):
        policy = ShortestPathPolicy()
        preferred = route_via(9, 8, 7, 0, local_pref=200)
        short = route_via(2, 0, local_pref=100)
        assert policy.preference_key(preferred) < policy.preference_key(short)

    def test_accepts_everything_by_default(self):
        policy = ShortestPathPolicy()
        assert policy.accept_import(5, route_via(5, 0))
        assert policy.accept_export(5, route_via(9, 0))


class TestNoTransit:
    def test_learned_route_not_exported(self):
        policy = NoTransitForPrefix("d")
        assert not policy.accept_export(7, route_via(5, 0))

    def test_local_route_still_exported(self):
        policy = NoTransitForPrefix("d")
        assert policy.accept_export(7, local_route("d"))

    def test_other_prefixes_unaffected(self):
        policy = NoTransitForPrefix("d")
        assert policy.accept_export(7, route_via(5, 0, prefix="other"))


class TestPreferNeighbor:
    def test_boosts_chosen_neighbor(self):
        policy = PreferNeighbor(5, boost=50)
        assert policy.local_pref(5, route_via(5, 0)) == 150
        assert policy.local_pref(6, route_via(6, 0)) == 100
