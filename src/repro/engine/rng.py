"""Seeded random-number streams for reproducible simulations.

Every stochastic element of the simulation (MRAI jitter, message processing
delay, destination choice in Internet topologies...) draws from its own named
stream so that changing how one component consumes randomness does not perturb
any other component.  This mirrors the variance-reduction practice of
substream-per-entity used in serious network simulators.

All streams are derived deterministically from a single root seed, so a run is
fully reproducible from ``(code, topology, root_seed)``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent, deterministically-seeded RNG streams.

    >>> streams = RandomStreams(seed=42)
    >>> a = streams.stream("mrai-jitter")
    >>> b = streams.stream("processing-delay")
    >>> a is streams.stream("mrai-jitter")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the named stream, creating it on first use.

        The stream's seed is a stable hash of ``(root_seed, name)`` so the
        same name always yields the same sequence for a given root seed,
        regardless of creation order.
        """
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory (e.g. one per trial in a sweep)."""
        digest = hashlib.sha256(f"{self._seed}/{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw ``U[low, high]`` from the named stream."""
        return self.stream(name).uniform(low, high)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self._seed} streams={sorted(self._streams)}>"
