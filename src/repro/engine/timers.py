"""Restartable one-shot timers built on the scheduler.

Routing protocols arm, disarm, and re-arm many timers (one MRAI timer per
(destination, peer) pair in this study).  :class:`Timer` wraps the raw event
handle with the start/cancel/expire lifecycle so protocol code never touches
heap entries directly.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import SimulationError
from .event import Event, EventPriority
from .scheduler import Scheduler


class Timer:
    """A one-shot, restartable timer.

    The callback runs once per ``start()`` unless ``cancel()`` intervenes.
    Restarting a running timer is an explicit error: protocol code in this
    library must decide whether to extend or ignore, and silent re-arming is
    a classic source of convergence-simulation bugs.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        callback: Callable[[], None],
        name: str = "timer",
        priority: int = EventPriority.TIMER,
        housekeeping: bool = False,
    ) -> None:
        self._scheduler = scheduler
        self._callback = callback
        self._name = name
        self._priority = priority
        self._housekeeping = housekeeping
        self._event: Optional[Event] = None
        self._expires_at: Optional[float] = None

    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the timer is armed and has not yet fired."""
        return self._event is not None and not self._event.cancelled

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time while running, else ``None``."""
        return self._expires_at if self.running else None

    def remaining(self) -> float:
        """Seconds until expiry; 0.0 when not running."""
        if not self.running:
            return 0.0
        assert self._expires_at is not None
        return max(0.0, self._expires_at - self._scheduler.now)

    # ------------------------------------------------------------------

    def start(self, delay: float) -> None:
        """Arm the timer to fire ``delay`` seconds from now."""
        if self.running:
            raise SimulationError(
                f"timer {self._name!r} started while already running; "
                "cancel() or restart() first"
            )
        self._expires_at = self._scheduler.now + delay
        self._event = self._scheduler.call_after(
            delay,
            self._fire,
            priority=self._priority,
            name=self._name,
            housekeeping=self._housekeeping,
        )

    def restart(self, delay: float) -> None:
        """Cancel any pending expiry and arm for ``delay`` seconds from now."""
        self.cancel()
        self.start(delay)

    def cancel(self) -> None:
        """Disarm the timer; a no-op when it is not running."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
            self._expires_at = None

    def _fire(self) -> None:
        self._event = None
        self._expires_at = None
        self._callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"expires={self._expires_at:.3f}" if self.running else "idle"
        return f"<Timer {self._name!r} {state}>"
