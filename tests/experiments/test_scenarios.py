"""Unit tests for scenario construction."""

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    EventKind,
    Scenario,
    custom_tdown,
    custom_tlong,
    tdown_clique,
    tdown_internet,
    tlong_bclique,
    tlong_internet,
)
from repro.topology import chain, clique


class TestValidation:
    def test_destination_must_exist(self):
        with pytest.raises(ConfigError):
            Scenario(name="x", topology=clique(3), destination=9, event=EventKind.TDOWN)

    def test_tlong_requires_failed_link(self):
        with pytest.raises(ConfigError, match="must name the link"):
            Scenario(name="x", topology=clique(3), destination=0, event=EventKind.TLONG)

    def test_tlong_link_must_exist(self):
        with pytest.raises(ConfigError):
            Scenario(
                name="x",
                topology=clique(3),
                destination=0,
                event=EventKind.TLONG,
                failed_link=(0, 9),
            )

    def test_tlong_rejects_cut_edges(self):
        with pytest.raises(ConfigError, match="cut edge"):
            custom_tlong(chain(3), destination=0, failed_link=(0, 1))

    def test_tdown_rejects_failed_link(self):
        with pytest.raises(ConfigError):
            Scenario(
                name="x",
                topology=clique(3),
                destination=0,
                event=EventKind.TDOWN,
                failed_link=(0, 1),
            )


class TestFamilies:
    def test_tdown_clique(self):
        scenario = tdown_clique(6)
        assert scenario.event is EventKind.TDOWN
        assert scenario.destination == 0
        assert scenario.topology.num_nodes == 6
        assert scenario.source_nodes == [1, 2, 3, 4, 5]

    def test_tlong_bclique_fails_edge_to_core_link(self):
        scenario = tlong_bclique(5)
        assert scenario.event is EventKind.TLONG
        assert scenario.failed_link == (0, 5)
        assert scenario.destination == 0

    def test_tdown_internet_destination_is_low_degree(self):
        scenario = tdown_internet(29, seed=1)
        topo = scenario.topology
        assert topo.degree(scenario.destination) == min(
            topo.degree(n) for n in topo.nodes
        )

    def test_tlong_internet_is_well_formed(self):
        scenario = tlong_internet(29, seed=1)
        assert scenario.event is EventKind.TLONG
        u, v = scenario.failed_link
        assert u == scenario.destination
        assert scenario.topology.has_edge(u, v)
        assert not scenario.topology.is_cut_edge(u, v)

    def test_tlong_internet_deterministic_per_seed(self):
        a = tlong_internet(29, seed=5)
        b = tlong_internet(29, seed=5)
        assert a.destination == b.destination
        assert a.failed_link == b.failed_link

    def test_custom_tdown(self):
        scenario = custom_tdown(chain(4), destination=3)
        assert scenario.event is EventKind.TDOWN
        assert scenario.destination == 3
