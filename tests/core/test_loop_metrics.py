"""Unit tests for LoopStudyResult."""

import pytest

from repro.core import ConvergenceReport, LoopStudyResult
from repro.core.loop_detector import LoopInterval
from repro.dataplane import DataPlaneReport


def convergence(failure=10.0, last=40.0, count=12):
    return ConvergenceReport(
        failure_time=failure,
        first_update_time=failure if count else None,
        last_update_time=last if count else None,
        update_count=count,
        announcement_count=count - 2,
        withdrawal_count=2 if count else 0,
    )


def dataplane(sent=100, exhausted=40, first=12.0, last=38.0):
    report = DataPlaneReport(window=(10.0, 40.0))
    report.packets_sent = sent
    report.ttl_exhaustions = exhausted
    report.delivered = sent - exhausted
    report.first_exhaustion = first if exhausted else None
    report.last_exhaustion = last if exhausted else None
    return report


def result(**kwargs):
    intervals = kwargs.pop(
        "intervals",
        [
            LoopInterval(cycle=(1, 2), start=12.0, end=20.0),
            LoopInterval(cycle=(3, 4, 5), start=15.0, end=38.0),
        ],
    )
    return LoopStudyResult(
        convergence=kwargs.pop("convergence", convergence()),
        dataplane=kwargs.pop("dataplane", dataplane()),
        loop_intervals=intervals,
        total_messages=kwargs.pop("total_messages", 50),
    )


class TestMetrics:
    def test_the_four_paper_metrics(self):
        r = result()
        assert r.convergence_time == 30.0
        assert r.overall_looping_duration == 26.0
        assert r.ttl_exhaustions == 40
        assert r.looping_ratio == pytest.approx(0.4)

    def test_looping_gap(self):
        assert result().looping_gap == pytest.approx(4.0)

    def test_loop_statistics(self):
        r = result()
        assert r.distinct_loop_count == 2
        assert r.max_loop_size == 3
        assert r.max_loop_duration == 23.0
        assert sorted(r.loop_sizes()) == [2, 3]

    def test_no_loops_edge_case(self):
        r = result(dataplane=dataplane(exhausted=0), intervals=[])
        assert r.overall_looping_duration == 0.0
        assert r.looping_ratio == 0.0
        assert r.max_loop_size == 0
        assert r.max_loop_duration == 0.0

    def test_summary_row_keys(self):
        row = result().summary_row()
        assert set(row) == {
            "convergence_time",
            "looping_duration",
            "ttl_exhaustions",
            "looping_ratio",
            "packets_sent",
            "updates_sent",
            "distinct_loops",
        }
        assert row["ttl_exhaustions"] == 40.0
