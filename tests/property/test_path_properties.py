"""Property-based tests for AS-path algebra."""

from hypothesis import given, strategies as st

from repro.bgp import AsPath

as_lists = st.lists(
    st.integers(min_value=0, max_value=1000), unique=True, max_size=12
)
nonempty_as_lists = st.lists(
    st.integers(min_value=0, max_value=1000), unique=True, min_size=1, max_size=12
)


@given(as_lists)
def test_roundtrip_through_tuple(ases):
    assert list(AsPath(ases)) == ases


@given(as_lists, st.integers(min_value=1001, max_value=2000))
def test_prepend_length_and_membership(ases, new_asn):
    path = AsPath(ases).prepend(new_asn)
    assert len(path) == len(ases) + 1
    assert path.head == new_asn
    assert new_asn in path
    assert all(a in path for a in ases)


@given(nonempty_as_lists)
def test_head_and_origin_are_ends(ases):
    path = AsPath(ases)
    assert path.head == ases[0]
    assert path.origin == ases[-1]


@given(nonempty_as_lists)
def test_suffix_from_every_member_ends_at_origin(ases):
    path = AsPath(ases)
    for asn in ases:
        suffix = path.suffix_from(asn)
        assert suffix is not None
        assert suffix.head == asn
        assert suffix.origin == path.origin
        assert len(suffix) == len(ases) - ases.index(asn)


@given(as_lists)
def test_suffix_from_nonmember_is_none(ases):
    outside = 5000
    assert AsPath(ases).suffix_from(outside) is None


@given(st.data())
def test_concat_is_associative(data):
    universe = data.draw(
        st.lists(st.integers(0, 1000), unique=True, min_size=3, max_size=12)
    )
    i = data.draw(st.integers(1, len(universe) - 2))
    j = data.draw(st.integers(i + 1, len(universe) - 1))
    a, b, c = AsPath(universe[:i]), AsPath(universe[i:j]), AsPath(universe[j:])
    assert a.concat(b).concat(c) == a.concat(b.concat(c))


@given(nonempty_as_lists)
def test_paths_hash_consistently(ases):
    assert hash(AsPath(ases)) == hash(AsPath(tuple(ases)))
    assert AsPath(ases) == AsPath(tuple(ases))


@given(nonempty_as_lists)
def test_next_after_walks_toward_origin(ases):
    path = AsPath(ases)
    for earlier, later in zip(ases, ases[1:]):
        assert path.next_after(earlier) == later
    assert path.next_after(path.origin) is None
