"""Observations 1-3 as one combined benchmark report.

Where the per-figure benchmarks regenerate the paper's plots, this module
checks the paper's three *Observations* directly on fresh sweeps and
records one verdict line per claim.
"""

from _support import RESULTS_DIR

from repro.bgp import BgpConfig
from repro.core import (
    check_duration_coupling,
    check_enhancement_ranking,
    check_linear_in_mrai,
    check_ratio_constant,
)
from repro.experiments import RunSettings, run_experiment, sweep, tdown_clique
from repro.experiments import tdown_internet
from repro.experiments.sweep import series, xs_of
from repro.util import mean

MRAI_VALUES = [7.5, 15.0, 30.0, 45.0]
SEEDS = (0, 1)


def mrai_sweep_points():
    return sweep(
        MRAI_VALUES,
        lambda x, seed: tdown_clique(10),
        lambda x: BgpConfig.standard(x),
        seeds=SEEDS,
        settings=RunSettings(),
    )


def test_observation1(benchmark):
    points = benchmark.pedantic(mrai_sweep_points, rounds=1, iterations=1)
    checks = [
        check_duration_coupling(
            series(points, "looping_duration"),
            series(points, "convergence_time"),
            max_gap_fraction=0.35,
        ),
        check_linear_in_mrai(xs_of(points), series(points, "looping_duration")),
        check_linear_in_mrai(xs_of(points), series(points, "convergence_time")),
    ]
    _write("observation1", checks)
    assert all(check.holds for check in checks), checks


def test_observation2(benchmark):
    points = benchmark.pedantic(mrai_sweep_points, rounds=1, iterations=1)
    checks = [
        check_linear_in_mrai(xs_of(points), series(points, "ttl_exhaustions")),
        check_ratio_constant(series(points, "looping_ratio")),
    ]
    _write("observation2", checks)
    assert all(check.holds for check in checks), checks


def test_observation3(benchmark):
    from repro.bgp import VARIANT_NAMES, variant

    def measure():
        metric = {}
        for name in VARIANT_NAMES:
            config = variant(name, mrai=30.0)
            runs = [
                run_experiment(
                    tdown_internet(48, seed=seed), config, RunSettings(), seed=seed
                ).result
                for seed in (0, 1, 2)
            ]
            metric[name] = mean([float(r.ttl_exhaustions) for r in runs])
        return metric

    metric = benchmark.pedantic(measure, rounds=1, iterations=1)
    checks = check_enhancement_ranking(metric)
    _write("observation3", checks, extra=[f"{k}: {v:.1f}" for k, v in metric.items()])
    assert all(check.holds for check in checks), checks


def _write(name, checks, extra=()):
    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [str(check) for check in checks] + list(extra)
    (RESULTS_DIR / f"{name}.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
    print()
    for line in lines:
        print(f"  {line}")
