"""A serialized work queue: the router-CPU model.

The paper configures a routing-message processing delay of U[0.1 s, 0.5 s],
two orders of magnitude above the 2 ms link delay, and notes that Ghost
Flushing's benefit degrades on large cliques because "the message containing
the latest path information is delayed by the processing of a large number of
withdrawal flushes".  That effect only exists if a node processes messages
*one at a time*; :class:`SerialProcessor` models exactly that: an M/G/1-style
single server with FIFO discipline.

Each submitted job carries its own service time (drawn by the caller, so the
randomness stays in the caller's named RNG stream).  The job's callback runs
when its service completes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Tuple

from .event import EventPriority
from .scheduler import Scheduler


class SerialProcessor:
    """A single-server FIFO processing queue driven by the scheduler.

    >>> sched = Scheduler()
    >>> cpu = SerialProcessor(sched, name="router-3")
    >>> done = []
    >>> cpu.submit(0.2, lambda: done.append("a"))
    >>> cpu.submit(0.3, lambda: done.append("b"))
    >>> _ = sched.run()
    >>> done   # "a" finishes at t=0.2, "b" queues behind it until t=0.5
    ['a', 'b']
    """

    def __init__(self, scheduler: Scheduler, name: str = "processor") -> None:
        self._scheduler = scheduler
        self._name = name
        self._queue: Deque[Tuple[float, Callable[[], None]]] = deque()
        self._busy = False
        self._jobs_completed = 0
        self._busy_until = 0.0

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a job is in service."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of jobs waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def jobs_completed(self) -> int:
        """Total jobs whose service has finished."""
        return self._jobs_completed

    @property
    def backlog_time(self) -> float:
        """Seconds until the queue would drain if nothing else arrives.

        Only an estimate of the in-service job's remainder plus the service
        times already assigned to the queued jobs.
        """
        waiting = sum(service for service, _ in self._queue)
        in_service = max(0.0, self._busy_until - self._scheduler.now)
        return waiting + in_service

    # ------------------------------------------------------------------

    def submit(self, service_time: float, on_done: Callable[[], None]) -> None:
        """Enqueue a job that takes ``service_time`` seconds of CPU.

        ``on_done`` runs at the simulated instant the service completes.
        """
        if service_time < 0:
            raise ValueError(f"negative service time {service_time}")
        self._queue.append((service_time, on_done))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        service_time, on_done = self._queue.popleft()
        self._busy_until = self._scheduler.now + service_time

        def finish() -> None:
            self._jobs_completed += 1
            # Run the job body before starting the next service slot so a
            # job's side effects (e.g. enqueueing replies) see a consistent
            # clock, then immediately begin the next queued job.
            on_done()
            self._start_next()

        self._scheduler.call_after(
            service_time,
            finish,
            priority=EventPriority.PROCESSING,
            name=f"{self._name}:job",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SerialProcessor {self._name!r} busy={self._busy} "
            f"queued={len(self._queue)} done={self._jobs_completed}>"
        )
