"""The resilient executor: policy validation, backoff, retry, timeouts.

Heavier fault-injection scenarios (digest equivalence under SIGKILL +
hang, subprocess drivers) live in ``test_resilience_chaos.py``; these
tests cover the :class:`ResiliencePolicy` contract and each failure
kind's bookkeeping in (mostly) isolation.
"""

import pickle
from functools import partial

import pytest

import chaos_helpers
from repro.bgp import BgpConfig
from repro.errors import ConfigError, TrialTimeoutError, WorkerCrashError
from repro.experiments import (
    ResiliencePolicy,
    RunSettings,
    SweepPoint,
    TrialFailure,
    TrialTimeout,
    clique_tdown_trial,
    constant_config,
    factory_ref,
    failures_of,
    last_report,
    sweep,
)

FAST = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(failure_guard=0.5)
#: Kills the 6-clique's warm-up while the 3-clique sails through.
TIGHT = RunSettings(failure_guard=0.5, event_budget=200)

MAKE_CONFIG = factory_ref(constant_config, config=FAST)

#: Generous watchdog budget for trials expected to finish normally.
SLACK = 60.0
#: Tight watchdog budget for trials expected to hang.
SNAP = 0.75


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = ResiliencePolicy()
        assert policy.max_attempts == policy.max_retries + 1
        assert policy.on_exhausted == "record"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_retries=-1),
            dict(backoff_base=-0.1),
            dict(backoff_cap=-1.0),
            dict(jitter=1.5),
            dict(jitter=-0.1),
            dict(trial_timeout=0.0),
            dict(trial_timeout=-5.0),
            dict(on_exhausted="explode"),
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ResiliencePolicy(**kwargs)


class TestBackoff:
    def test_first_attempt_never_waits(self):
        policy = ResiliencePolicy(backoff_base=1.0)
        assert policy.backoff_delay(0, 0, 1) == 0.0

    def test_deterministic_across_calls(self):
        a = ResiliencePolicy()
        b = ResiliencePolicy()
        for attempt in (2, 3, 4):
            assert a.backoff_delay(7, 3, attempt) == b.backoff_delay(
                7, 3, attempt
            )

    def test_jitter_streams_differ_by_task(self):
        policy = ResiliencePolicy(backoff_base=1.0, jitter=1.0)
        delays = {policy.backoff_delay(i, 0, 2) for i in range(8)}
        assert len(delays) > 1

    def test_exponential_growth_and_cap(self):
        policy = ResiliencePolicy(
            backoff_base=0.1, backoff_cap=0.4, jitter=0.0
        )
        assert policy.backoff_delay(0, 0, 2) == pytest.approx(0.1)
        assert policy.backoff_delay(0, 0, 3) == pytest.approx(0.2)
        assert policy.backoff_delay(0, 0, 4) == pytest.approx(0.4)
        assert policy.backoff_delay(0, 0, 7) == pytest.approx(0.4)  # capped

    def test_jitter_bounded_by_fraction(self):
        policy = ResiliencePolicy(backoff_base=1.0, backoff_cap=1.0, jitter=0.25)
        for index in range(16):
            delay = policy.backoff_delay(index, 1, 2)
            assert 1.0 <= delay <= 1.25


class TestFailureTypes:
    def test_trial_failure_repr_excludes_elapsed(self):
        failure = TrialFailure(
            x=3, seed=1, error=TrialTimeoutError("boom"),
            attempt=2, elapsed=1.2345,
        )
        assert repr(failure) == "TrialFailure(x=3, seed=1, attempt=2: boom)"
        assert "1.2345" not in repr(failure)

    def test_trial_timeout_is_a_trial_failure(self):
        timeout = TrialTimeout(
            x=4, seed=0, error=TrialTimeoutError("slow", timeout=2.0),
            attempt=1, timeout=2.0,
        )
        assert isinstance(timeout, TrialFailure)
        assert repr(timeout) == (
            "TrialTimeout(x=4, seed=0, attempt=1, timeout=2.0: slow)"
        )

    def test_timeout_error_pickles_with_fields(self):
        error = TrialTimeoutError("slow", timeout=2.5, attempts=3)
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.timeout, clone.attempts) == (2.5, 3)

    def test_worker_crash_error_pickles_with_fields(self):
        error = WorkerCrashError("dead", exitcode=-9, attempts=2)
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.exitcode, clone.attempts) == (-9, 2)

    def test_sweep_point_counts_timeouts(self):
        point = SweepPoint(x=3)
        point.failures.append(
            TrialFailure(x=3, seed=0, error=TrialTimeoutError("x"))
        )
        point.failures.append(
            TrialTimeout(x=3, seed=1, error=TrialTimeoutError("y"))
        )
        assert point.failed == 2
        assert point.timeouts == 1

    def test_failures_of_sorts_by_x_then_seed(self):
        def failure(x, seed):
            return TrialFailure(x=x, seed=seed, error=TrialTimeoutError("e"))

        late = SweepPoint(x=9, failures=[failure(9, 1), failure(9, 0)])
        early = SweepPoint(x=2, failures=[failure(2, 5)])
        ordered = failures_of([late, early])
        assert [(f.x, f.seed) for f in ordered] == [(2, 5), (9, 0), (9, 1)]


class TestInProcessPolicy:
    def test_jobs1_policy_adds_provenance(self):
        points = sweep(
            [3],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            policy=ResiliencePolicy(),
        )
        assert points[0].runs[0].attempt == 1

    def test_jobs1_failure_carries_attempt_and_elapsed(self):
        points = sweep(
            [6],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=TIGHT,
            policy=ResiliencePolicy(),
        )
        failure = points[0].failures[0]
        assert failure.attempt == 1
        assert failure.elapsed > 0


class TestSupervisedExecutor:
    def test_worker_kill_retried_to_success(self, tmp_path):
        make_scenario = partial(
            chaos_helpers.kill_once_tdown,
            marker_dir=str(tmp_path),
            kill_key=(3, 0),
        )
        reports = []
        points = sweep(
            [3],
            make_scenario,
            MAKE_CONFIG,
            seeds=(0, 1),
            settings=SETTINGS,
            jobs=2,
            policy=ResiliencePolicy(max_retries=2, trial_timeout=SLACK),
            on_report=reports.append,
        )
        assert points[0].succeeded == 2
        attempts = {run.seed: run.attempt for run in points[0].runs}
        assert attempts[0] == 2  # the killed trial was re-run
        assert attempts[1] == 1
        [report] = reports
        assert report.worker_deaths == 1
        assert report.worker_restarts == 1
        assert report.retries == 1
        assert report.exhausted == 0
        assert report.metrics.counter("resilience.worker_deaths") == 1

    def test_hung_trial_times_out_and_is_recorded(self):
        reports = []
        points = sweep(
            [3],
            chaos_helpers.hang_always_tdown,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            jobs=2,
            policy=ResiliencePolicy(
                max_retries=0, trial_timeout=SNAP, backoff_base=0.01
            ),
            on_report=reports.append,
        )
        assert points[0].succeeded == 0
        assert points[0].timeouts == 1
        failure = points[0].failures[0]
        assert isinstance(failure, TrialTimeout)
        assert isinstance(failure.error, TrialTimeoutError)
        assert failure.timeout == SNAP
        assert failure.attempt == 1
        assert failure.elapsed >= SNAP
        assert reports[-1].timeouts == 1

    def test_hang_once_then_success(self, tmp_path):
        reports = []
        make_scenario = partial(
            chaos_helpers.hang_once_tdown,
            marker_dir=str(tmp_path),
            hang_key=(3, 0),
        )
        points = sweep(
            [3],
            make_scenario,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            jobs=2,
            policy=ResiliencePolicy(
                max_retries=1, trial_timeout=SNAP, backoff_base=0.01
            ),
            on_report=reports.append,
        )
        assert points[0].succeeded == 1
        assert points[0].runs[0].attempt == 2
        [report] = reports
        assert report.timeouts == 1
        assert report.retries == 1
        assert report.completed == 1

    def test_exhausted_worker_crash_recorded(self):
        reports = []
        points = sweep(
            [3],
            chaos_helpers.kill_always_tdown,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            jobs=2,
            policy=ResiliencePolicy(
                max_retries=1, backoff_base=0.01, trial_timeout=SLACK
            ),
            on_report=reports.append,
        )
        failure = points[0].failures[0]
        assert isinstance(failure.error, WorkerCrashError)
        assert failure.error.exitcode == -9
        assert failure.attempt == 2
        [report] = reports
        assert report.worker_deaths == 2
        assert report.exhausted == 1

    def test_on_exhausted_raise_aborts_the_sweep(self):
        with pytest.raises(TrialTimeoutError):
            sweep(
                [3],
                chaos_helpers.hang_always_tdown,
                MAKE_CONFIG,
                seeds=(0,),
                settings=SETTINGS,
                jobs=2,
                policy=ResiliencePolicy(
                    max_retries=0, trial_timeout=SNAP, on_exhausted="raise"
                ),
            )

    def test_simulation_failures_are_not_retried(self):
        """Deterministic failures (budget exhaustion) must come back as
        plain first-attempt TrialFailures — retrying them would waste
        the whole backoff budget failing identically."""
        reports = []
        points = sweep(
            [3, 6],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=TIGHT,
            jobs=2,
            policy=ResiliencePolicy(max_retries=3, trial_timeout=SLACK),
            on_report=reports.append,
        )
        assert [(p.succeeded, p.failed) for p in points] == [(1, 0), (0, 1)]
        failure = points[1].failures[0]
        assert failure.attempt == 1
        assert reports[-1].retries == 0

    def test_progress_callback_sees_every_trial(self):
        seen = []
        sweep(
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0, 1),
            settings=SETTINGS,
            jobs=2,
            policy=ResiliencePolicy(trial_timeout=SLACK),
            on_progress=seen.append,
        )
        assert len(seen) == 4
        assert [p.done for p in seen] == [1, 2, 3, 4]
        assert {(p.x, p.seed) for p in seen} == {
            (3, 0), (3, 1), (4, 0), (4, 1),
        }


class TestReportThreading:
    """SupervisionReports travel through return values, not globals."""

    def test_jobs1_resilient_sweep_reports_zero_supervision(self):
        reports = []
        sweep(
            [3],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0, 1),
            settings=SETTINGS,
            jobs=1,
            policy=ResiliencePolicy(),
            on_report=reports.append,
        )
        [report] = reports
        assert report.trials == 2
        assert report.completed == 2
        assert (report.retries, report.timeouts, report.worker_deaths) == (
            0, 0, 0,
        )

    def test_no_policy_means_no_report(self):
        reports = []
        sweep(
            [3],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            jobs=1,
            on_report=reports.append,
        )
        assert reports == []

    def test_merged_sums_counts_and_aggregates_metrics(self):
        from repro.experiments import SupervisionReport
        from repro.telemetry import MetricsSnapshot

        left = SupervisionReport(
            trials=2, completed=2, retries=1, timeouts=1,
            metrics=MetricsSnapshot(counters={"resilience.retries": 1}),
        )
        right = SupervisionReport(
            trials=3, completed=2, worker_deaths=1, exhausted=1,
            metrics=MetricsSnapshot(counters={"resilience.retries": 2}),
        )
        merged = left.merged(right)
        assert merged.trials == 5
        assert merged.completed == 4
        assert merged.retries == 1
        assert merged.timeouts == 1
        assert merged.worker_deaths == 1
        assert merged.exhausted == 1
        assert merged.metrics.counter("resilience.retries") == 3

    def test_last_report_shim_still_mirrors_and_deprecates(self):
        sweep(
            [3],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            jobs=1,
            policy=ResiliencePolicy(),
        )
        with pytest.deprecated_call():
            report = last_report()
        assert report is not None
        assert report.completed >= 1
