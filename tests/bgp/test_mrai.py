"""Unit tests for the MRAI manager."""

import random

import pytest

from repro.bgp import MraiManager
from repro.engine import Scheduler


@pytest.fixture
def expiries():
    return []


def make_manager(scheduler, expiries, interval=10.0, jitter=(1.0, 1.0)):
    return MraiManager(
        scheduler,
        interval=interval,
        jitter=jitter,
        rng=random.Random(0),
        on_expiry=lambda peer, prefix: expiries.append((scheduler.now, peer, prefix)),
    )


class TestHoldRelease:
    def test_can_send_initially(self, scheduler, expiries):
        mrai = make_manager(scheduler, expiries)
        assert mrai.can_send_now(1, "d")
        assert not mrai.holding(1, "d")

    def test_mark_sent_holds_until_expiry(self, scheduler, expiries):
        mrai = make_manager(scheduler, expiries)
        mrai.mark_sent(1, "d")
        assert not mrai.can_send_now(1, "d")
        scheduler.run()
        assert expiries == [(10.0, 1, "d")]
        assert mrai.can_send_now(1, "d")

    def test_pairs_are_independent(self, scheduler, expiries):
        mrai = make_manager(scheduler, expiries)
        mrai.mark_sent(1, "d")
        assert mrai.can_send_now(2, "d")   # other peer unaffected
        assert mrai.can_send_now(1, "e")   # other prefix unaffected

    def test_mark_sent_restarts_timer(self, scheduler, expiries):
        mrai = make_manager(scheduler, expiries)
        mrai.mark_sent(1, "d")
        scheduler.call_at(4.0, lambda: mrai.mark_sent(1, "d"))
        scheduler.run()
        assert expiries == [(14.0, 1, "d")]

    def test_active_timers_count(self, scheduler, expiries):
        mrai = make_manager(scheduler, expiries)
        mrai.mark_sent(1, "d")
        mrai.mark_sent(2, "d")
        assert mrai.active_timers() == 2
        scheduler.run()
        assert mrai.active_timers() == 0


class TestDisabled:
    def test_zero_interval_disables_holding(self, scheduler, expiries):
        mrai = make_manager(scheduler, expiries, interval=0.0)
        assert not mrai.enabled
        mrai.mark_sent(1, "d")
        assert mrai.can_send_now(1, "d")
        scheduler.run()
        assert expiries == []


class TestJitter:
    def test_jitter_scales_interval(self, scheduler, expiries):
        mrai = make_manager(scheduler, expiries, interval=10.0, jitter=(0.75, 1.0))
        mrai.mark_sent(1, "d")
        scheduler.run()
        when = expiries[0][0]
        assert 7.5 <= when <= 10.0

    def test_jitter_varies_across_armings(self, scheduler, expiries):
        mrai = make_manager(scheduler, expiries, interval=10.0, jitter=(0.75, 1.0))
        for peer in range(10):
            mrai.mark_sent(peer, "d")
        scheduler.run()
        distinct_expiry_times = {when for when, _peer, _prefix in expiries}
        assert len(distinct_expiry_times) > 1  # armings draw fresh jitter


class TestSessionDown:
    def test_cancel_peer_releases_holds(self, scheduler, expiries):
        mrai = make_manager(scheduler, expiries)
        mrai.mark_sent(1, "a")
        mrai.mark_sent(1, "b")
        mrai.mark_sent(2, "a")
        mrai.cancel_peer(1)
        assert mrai.can_send_now(1, "a")
        assert mrai.can_send_now(1, "b")
        assert not mrai.can_send_now(2, "a")
        scheduler.run()
        assert [(p, x) for _t, p, x in expiries] == [(2, "a")]


class TestValidation:
    def test_negative_interval_rejected(self, scheduler, expiries):
        with pytest.raises(ValueError):
            make_manager(scheduler, expiries, interval=-1.0)

    def test_bad_jitter_rejected(self, scheduler, expiries):
        with pytest.raises(ValueError):
            make_manager(scheduler, expiries, jitter=(0.0, 1.0))
        with pytest.raises(ValueError):
            make_manager(scheduler, expiries, jitter=(1.5, 1.0))
