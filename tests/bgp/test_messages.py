"""Unit tests for BGP messages."""

import pytest

from repro.bgp import Announcement, AsPath, Withdrawal, is_update


class TestAnnouncement:
    def test_sender_is_path_head(self):
        msg = Announcement(prefix="d", path=AsPath((5, 4, 0)))
        assert msg.sender == 5

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Announcement(prefix="d", path=AsPath.empty())

    def test_value_equality(self):
        a = Announcement("d", AsPath((1, 0)))
        b = Announcement("d", AsPath((1, 0)))
        assert a == b

    def test_repr(self):
        msg = Announcement("d", AsPath((1, 0)))
        assert "d" in repr(msg) and "(1 0)" in repr(msg)


class TestWithdrawal:
    def test_value_equality(self):
        assert Withdrawal("d") == Withdrawal("d")
        assert Withdrawal("d") != Withdrawal("e")


class TestIsUpdate:
    def test_updates_counted(self):
        assert is_update(Announcement("d", AsPath((1, 0))))
        assert is_update(Withdrawal("d"))

    def test_non_updates_not_counted(self):
        assert not is_update("keepalive")
        assert not is_update(None)
