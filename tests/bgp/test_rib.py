"""Unit tests for the three RIBs."""

import pytest

from repro.bgp import (
    NOTHING_SENT,
    AdjRibIn,
    AdjRibOut,
    AsPath,
    LocRib,
    Route,
    RoutingPolicy,
)


def route_via(neighbor, *path_tail, prefix="d"):
    return Route(prefix=prefix, path=AsPath((neighbor,) + path_tail), next_hop=neighbor)


class TestAdjRibIn:
    def test_put_get(self):
        rib = AdjRibIn()
        rib.put(5, route_via(5, 0))
        assert rib.get(5, "d") == route_via(5, 0)
        assert rib.get(5, "x") is None
        assert rib.get(9, "d") is None

    def test_put_replaces(self):
        rib = AdjRibIn()
        rib.put(5, route_via(5, 0))
        rib.put(5, route_via(5, 4, 0))
        assert rib.get(5, "d") == route_via(5, 4, 0)
        assert len(rib) == 1

    def test_remove(self):
        rib = AdjRibIn()
        rib.put(5, route_via(5, 0))
        assert rib.remove(5, "d") == route_via(5, 0)
        assert rib.remove(5, "d") is None
        assert len(rib) == 0

    def test_drop_neighbor_returns_affected_prefixes(self):
        rib = AdjRibIn()
        rib.put(5, route_via(5, 0, prefix="a"))
        rib.put(5, route_via(5, 0, prefix="b"))
        rib.put(6, route_via(6, 0, prefix="a"))
        assert rib.drop_neighbor(5) == ["a", "b"]
        assert rib.get(5, "a") is None
        assert rib.get(6, "a") is not None

    def test_candidates_in_neighbor_order(self):
        rib = AdjRibIn()
        rib.put(9, route_via(9, 0))
        rib.put(2, route_via(2, 0))
        assert [r.next_hop for r in rib.candidates("d")] == [2, 9]

    def test_neighbors_with(self):
        rib = AdjRibIn()
        rib.put(9, route_via(9, 0))
        rib.put(2, route_via(2, 0, prefix="other"))
        assert rib.neighbors_with("d") == [9]

    def test_entries_iteration(self):
        rib = AdjRibIn()
        rib.put(5, route_via(5, 0, prefix="b"))
        rib.put(5, route_via(5, 0, prefix="a"))
        rib.put(3, route_via(3, 0, prefix="a"))
        pairs = [(n, r.prefix) for n, r in rib.entries()]
        assert pairs == [(3, "a"), (5, "a"), (5, "b")]


class TestAdjRibInSharing:
    """Copy-on-write structural sharing across prefixes (group_count is the
    diagnostic; every value-level behavior above must hold regardless)."""

    def fill(self, rib, prefixes):
        for prefix in prefixes:
            rib.put(5, route_via(5, 0, prefix=prefix))
            rib.put(6, route_via(6, 4, 0, prefix=prefix))

    def test_identical_candidate_sets_share_one_group(self):
        rib = AdjRibIn()
        self.fill(rib, ("a", "b", "c"))
        assert len(rib) == 6
        assert rib.group_count() == 1
        assert rib.candidates("a") == [
            route_via(5, 0, prefix="a"),
            route_via(6, 4, 0, prefix="a"),
        ]

    def test_diverging_prefix_splits_its_group(self):
        rib = AdjRibIn()
        self.fill(rib, ("a", "b"))
        rib.put(5, route_via(5, 9, 0, prefix="b"))
        assert rib.group_count() == 2
        assert rib.get(5, "a") == route_via(5, 0, prefix="a")
        assert rib.get(5, "b") == route_via(5, 9, 0, prefix="b")

    def test_reconverging_prefix_remerges(self):
        rib = AdjRibIn()
        self.fill(rib, ("a", "b"))
        rib.put(5, route_via(5, 9, 0, prefix="b"))  # diverge
        rib.put(5, route_via(5, 0, prefix="b"))  # converge back
        assert rib.group_count() == 1

    def test_remove_splits_then_remerges(self):
        rib = AdjRibIn()
        self.fill(rib, ("a", "b"))
        assert rib.remove(5, "b") == route_via(5, 0, prefix="b")
        assert rib.group_count() == 2
        assert rib.remove(5, "a") == route_via(5, 0, prefix="a")
        assert rib.group_count() == 1
        assert rib.neighbors_with("a") == [6]

    def test_drop_neighbor_with_shared_groups(self):
        rib = AdjRibIn()
        self.fill(rib, ("a", "b"))
        assert rib.drop_neighbor(5) == ["a", "b"]
        assert rib.group_count() == 1
        assert rib.candidates("a") == [route_via(6, 4, 0, prefix="a")]

    def test_reads_hand_back_interned_instances(self):
        rib = AdjRibIn()
        rib.put(5, route_via(5, 0))
        route = rib.get(5, "d")
        assert route is Route.of("d", AsPath((5, 0)), 5)
        assert rib.candidates("d")[0] is route

    def test_base_preference_key_still_shares(self):
        policy = RoutingPolicy()
        rib = AdjRibIn(policy.preference_key)
        self.fill(rib, ("a", "b"))
        assert rib.group_count() == 1
        assert rib.best("a") == route_via(5, 0, prefix="a")
        assert rib.best("b") == route_via(5, 0, prefix="b")

    def test_custom_preference_key_disables_sharing(self):
        # A prefix-dependent ranking must not be shared across prefixes.
        rib = AdjRibIn(lambda route: (route.prefix, route.hop_count))
        self.fill(rib, ("a", "b"))
        assert rib.group_count() == 2
        assert rib.best("a") == route_via(5, 0, prefix="a")


class TestLocRib:
    def test_set_get_remove(self):
        rib = LocRib()
        rib.set(route_via(5, 0))
        assert rib.get("d") == route_via(5, 0)
        assert "d" in rib
        assert rib.remove("d") == route_via(5, 0)
        assert rib.get("d") is None
        assert rib.remove("d") is None

    def test_prefixes_sorted(self):
        rib = LocRib()
        rib.set(route_via(5, 0, prefix="z"))
        rib.set(route_via(5, 0, prefix="a"))
        assert rib.prefixes() == ["a", "z"]
        assert len(rib) == 2


class TestAdjRibOut:
    def test_nothing_sent_initially(self):
        rib = AdjRibOut()
        assert rib.last_sent(5, "d") == NOTHING_SENT
        assert rib.last_sent(5, "d").is_withdrawn

    def test_record_announcement(self):
        rib = AdjRibOut()
        rib.record_announcement(5, "d", AsPath((1, 0)))
        state = rib.last_sent(5, "d")
        assert not state.is_withdrawn
        assert state.path == AsPath((1, 0))

    def test_withdrawal_equals_nothing_sent(self):
        """Explicit withdrawal and never-sent must compare equal: in both
        cases the peer holds nothing from us (duplicate suppression)."""
        rib = AdjRibOut()
        rib.record_announcement(5, "d", AsPath((1, 0)))
        rib.record_withdrawal(5, "d")
        assert rib.last_sent(5, "d") == NOTHING_SENT

    def test_drop_neighbor(self):
        rib = AdjRibOut()
        rib.record_announcement(5, "d", AsPath((1, 0)))
        rib.drop_neighbor(5)
        assert rib.last_sent(5, "d") == NOTHING_SENT

    def test_advertised_prefixes_excludes_withdrawn(self):
        rib = AdjRibOut()
        rib.record_announcement(5, "a", AsPath((1, 0)))
        rib.record_announcement(5, "b", AsPath((1, 0)))
        rib.record_withdrawal(5, "b")
        assert rib.advertised_prefixes(5) == ["a"]
