"""The durable job queue: submissions survive reopen, torn tails are
truncated, two writers fail fast, compaction is atomic."""

import pytest

from repro.errors import JournalError, ServiceError
from repro.service import DurableJobQueue, JobSpec
from repro.service.jobs import CANCELLED, DONE, QUEUED, RUNNING


SPEC = JobSpec(kind="bench", params={"repeat": 1})


class TestSubmitAndReplay:
    def test_sequential_ids(self, tmp_path):
        with DurableJobQueue(tmp_path / "jobs.jsonl") as queue:
            assert queue.submit(SPEC).job_id == "job-1"
            assert queue.submit(SPEC).job_id == "job-2"

    def test_replay_restores_jobs_and_counter(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with DurableJobQueue(path) as queue:
            queue.submit(SPEC, now=10.0)
            queue.submit(SPEC, now=11.0)
            queue.transition("job-1", DONE, {"trials": 4}, now=12.0)
        with DurableJobQueue(path) as queue:
            jobs = queue.jobs()
            assert [view.job_id for view in jobs] == ["job-1", "job-2"]
            assert jobs[0].state == DONE
            assert jobs[0].detail == {"trials": 4}
            assert jobs[1].state == QUEUED
            # The id counter resumes past the replayed jobs.
            assert queue.submit(SPEC).job_id == "job-3"

    def test_pending_excludes_terminal(self, tmp_path):
        with DurableJobQueue(tmp_path / "jobs.jsonl") as queue:
            queue.submit(SPEC)
            queue.submit(SPEC)
            queue.transition("job-1", CANCELLED)
            assert [view.job_id for view in queue.pending()] == ["job-2"]

    def test_unknown_job_raises(self, tmp_path):
        with DurableJobQueue(tmp_path / "jobs.jsonl") as queue:
            with pytest.raises(ServiceError, match="unknown job"):
                queue.get("job-9")
            with pytest.raises(ServiceError, match="unknown job"):
                queue.transition("job-9", DONE)

    def test_unknown_state_raises(self, tmp_path):
        with DurableJobQueue(tmp_path / "jobs.jsonl") as queue:
            queue.submit(SPEC)
            with pytest.raises(ServiceError, match="unknown job state"):
                queue.transition("job-1", "paused")


class TestDurability:
    def test_torn_tail_truncated_on_replay(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with DurableJobQueue(path) as queue:
            queue.submit(SPEC)
            queue.submit(SPEC)
        intact_size = path.stat().st_size
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"crc":123,"record":{"op":"su')  # torn mid-write
        with DurableJobQueue(path) as queue:
            assert [view.job_id for view in queue.jobs()] == ["job-1", "job-2"]
        assert path.stat().st_size == intact_size  # tail physically removed

    def test_corrupt_line_stops_replay_there(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with DurableJobQueue(path) as queue:
            queue.submit(SPEC)
            queue.transition("job-1", RUNNING)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"crc":1,"record":{"op":"state","id":"job-1"}}\n')
        with DurableJobQueue(path) as queue:
            # Everything before the bad CRC survives; the bad frame and
            # anything after it are discarded.
            assert queue.get("job-1").state == RUNNING

    def test_two_writers_fail_fast(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        first = DurableJobQueue(path)
        first.submit(SPEC)
        second = DurableJobQueue(path)  # reading is fine...
        assert [view.job_id for view in second.jobs()] == ["job-1"]
        with pytest.raises(JournalError, match="already has a writer"):
            second.submit(SPEC)  # ...writing is not
        first.close()
        # Lock released: a new writer may proceed.
        with DurableJobQueue(path) as queue:
            queue.submit(SPEC)


class TestCompaction:
    def test_compact_drops_old_terminal_jobs(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with DurableJobQueue(path) as queue:
            for _ in range(5):
                queue.submit(SPEC)
            for n in range(1, 5):
                queue.transition(f"job-{n}", DONE)
            dropped = queue.compact(keep_terminal=2)
            assert dropped == 2
            assert [view.job_id for view in queue.jobs()] == [
                "job-3",
                "job-4",
                "job-5",
            ]
            # Still writable after the rewrite.
            queue.submit(SPEC)
        with DurableJobQueue(path) as queue:
            assert [view.job_id for view in queue.jobs()] == [
                "job-3",
                "job-4",
                "job-5",
                "job-6",
            ]

    def test_compact_collapses_transition_history(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with DurableJobQueue(path) as queue:
            queue.submit(SPEC)
            for state in (RUNNING, QUEUED, RUNNING, DONE):
                queue.transition("job-1", state)
            before = sum(1 for _ in path.open())
            queue.compact()
            after = sum(1 for _ in path.open())
        assert before == 5
        assert after == 2  # one submit + one final-state record

    def test_compact_keeps_pending_jobs(self, tmp_path):
        with DurableJobQueue(tmp_path / "jobs.jsonl") as queue:
            queue.submit(SPEC)
            queue.transition("job-1", DONE)
            queue.submit(SPEC)
            queue.compact(keep_terminal=0)
            assert [view.job_id for view in queue.jobs()] == ["job-2"]
