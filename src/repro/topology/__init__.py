"""AS-level topologies: the graph type, generators, and file I/O.

The paper's three topology families are all here: :func:`clique` and
:func:`b_clique` (Figure 3), and :func:`internet_like` (the synthetic
substitute for the Internet-derived graphs, see DESIGN.md §2).
"""

from .generators import (
    b_clique,
    binary_tree,
    chain,
    clique,
    destination_for,
    grid,
    named_generator,
    ring,
    ring_with_core,
    star,
)
from .graph import DEFAULT_LINK_DELAY, Topology
from .internet import (
    PAPER_SIZES,
    InternetShape,
    Tier,
    choose_destination,
    choose_failure_link,
    internet_like,
    internet_like_with_tiers,
    provider_load,
)
from .io import dump_edge_list, dumps_edge_list, load_edge_list

__all__ = [
    "DEFAULT_LINK_DELAY",
    "PAPER_SIZES",
    "InternetShape",
    "Tier",
    "Topology",
    "b_clique",
    "binary_tree",
    "chain",
    "choose_destination",
    "choose_failure_link",
    "clique",
    "destination_for",
    "dump_edge_list",
    "dumps_edge_list",
    "grid",
    "internet_like",
    "internet_like_with_tiers",
    "load_edge_list",
    "named_generator",
    "provider_load",
    "ring",
    "ring_with_core",
    "star",
]
