"""The BGP decision process.

Given the local origination (if any) and the Adj-RIB-In candidates, pick the
best route under the active :class:`~repro.bgp.policy.RoutingPolicy`.  The
decision process is a pure function of RIB state, which makes the speaker's
invariant checkable: *Loc-RIB always equals the decision-process optimum.*
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .messages import Prefix
from .policy import RoutingPolicy
from .rib import AdjRibIn
from .route import Route, local_route

UsablePredicate = Callable[[Route], bool]
"""Extra eligibility filter (e.g. route-flap damping suppression)."""


class DecisionProcess:
    """Selects best routes under a policy."""

    def __init__(self, policy: RoutingPolicy) -> None:
        self._policy = policy

    @property
    def policy(self) -> RoutingPolicy:
        return self._policy

    def candidates(
        self,
        prefix: Prefix,
        adj_rib_in: AdjRibIn,
        originated: bool,
        usable: Optional[UsablePredicate] = None,
    ) -> List[Route]:
        """All selectable routes for ``prefix`` (deterministic order).

        ``usable`` excludes stored-but-ineligible routes — a damped
        (peer, prefix) stays in the Adj-RIB-In per RFC 2439 but must not be
        selected while suppressed.
        """
        routes: List[Route] = []
        if originated:
            routes.append(local_route(prefix))
        for route in adj_rib_in.candidates(prefix):
            if usable is None or usable(route):
                routes.append(route)
        return routes

    def select(
        self,
        prefix: Prefix,
        adj_rib_in: AdjRibIn,
        originated: bool,
        usable: Optional[UsablePredicate] = None,
    ) -> Optional[Route]:
        """The best route for ``prefix``, or ``None`` when unreachable.

        On a ranked Adj-RIB-In (one keeping the incremental per-prefix
        ranking, see :class:`~repro.bgp.rib.AdjRibIn`) the winner is read
        off the ranking instead of re-keying every candidate.  Both paths
        pick the same route: the ranking tie-breaks by neighbor id exactly
        like the first-encountered ``min`` over :meth:`candidates`, and the
        local route wins ties against peers just as it does when listed
        first in the naive scan.
        """
        if adj_rib_in.ranked:
            best_peer = adj_rib_in.best(prefix, usable)
            if not originated:
                return best_peer
            local = local_route(prefix)
            if best_peer is None:
                return local
            key = self._policy.preference_key
            return local if key(local) <= key(best_peer) else best_peer
        return self.select_naive(prefix, adj_rib_in, originated, usable)

    def select_naive(
        self,
        prefix: Prefix,
        adj_rib_in: AdjRibIn,
        originated: bool,
        usable: Optional[UsablePredicate] = None,
    ) -> Optional[Route]:
        """Reference selection: full scan over :meth:`candidates`.

        Kept as the ground truth the incremental ranking is checked against
        (``--sanitize`` runs and the decision-cache golden test).
        """
        routes = self.candidates(prefix, adj_rib_in, originated, usable)
        if not routes:
            return None
        return min(routes, key=self._policy.preference_key)

    def prefers(self, challenger: Route, incumbent: Route) -> bool:
        """True when ``challenger`` would beat ``incumbent``."""
        return (
            self._policy.preference_key(challenger)
            < self._policy.preference_key(incumbent)
        )
