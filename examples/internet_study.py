#!/usr/bin/env python
"""Transient loops on Internet-like AS graphs: the paper's "next steps".

The paper measures aggregate looping metrics and names per-loop statistics
(size and duration of individual loops) as future work.  This example runs
both failure events on an Internet-like topology and reports exactly those
statistics from the FIB history: every distinct loop, its size, lifetime,
and packet toll — plus the loop-size histogram that prior measurement work
(Hengartner et al.) reported for a real backbone ("more than half of the
loops involved only two nodes").

Usage::

    python examples/internet_study.py [size] [seed]
"""

import sys

from repro import BgpConfig, RunSettings, run_experiment
from repro import tdown_internet, tlong_internet
from repro.core import loop_size_histogram
from repro.util import render_table


def study(scenario, seed):
    run = run_experiment(scenario, BgpConfig.standard(30.0), RunSettings(), seed=seed)
    result = run.result
    print(
        f"\n{scenario.name}: convergence {result.convergence_time:.1f}s, "
        f"looping {result.overall_looping_duration:.1f}s, "
        f"ratio {result.looping_ratio:.1%}, "
        f"{result.distinct_loop_count} distinct loops"
    )
    if not result.loop_intervals:
        print("  (no loops observed)")
        return

    rows = [
        [
            " -> ".join(str(n) for n in interval.cycle),
            interval.size,
            interval.start - run.failure_time,
            interval.duration,
        ]
        for interval in sorted(
            result.loop_intervals, key=lambda i: -i.duration
        )[:10]
    ]
    print(
        render_table(
            ["loop", "size", "formed_after_s", "lifetime_s"],
            rows,
            title="Longest-lived individual loops",
        )
    )
    histogram = loop_size_histogram(result.loop_intervals)
    total = sum(histogram.values())
    print("  Loop size distribution:")
    for size in sorted(histogram):
        share = histogram[size] / total
        print(f"    {size}-node loops: {histogram[size]:3d}  ({share:.0%})")


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    print(
        f"Studying transient loops on a synthetic Internet-like AS graph "
        f"(n={size}, seed={seed})."
    )
    study(tdown_internet(size, seed=seed), seed)
    study(tlong_internet(size, seed=seed), seed)


if __name__ == "__main__":
    main()
