"""Extension study: path exploration from route-change traces (§6).

Quantifies the micro-mechanism behind the paper's macro results: after a
Tdown event every node serially adopts longer and longer obsolete paths
("path exploration"), each adoption gated by the MRAI timer.  Exploration
depth therefore grows with the pool of obsolete alternatives (clique size)
while the paper's Observation 1 follows as convergence ≈ depth × M.
"""

from _support import RESULTS_DIR

from repro.bgp import BgpConfig
from repro.core import ExplorationReport
from repro.experiments import RunSettings, run_experiment, tdown_clique
from repro.util import mean, render_table

SIZES = (5, 8, 11, 14)
SEEDS = (0, 1)


def measure():
    rows = []
    depths = []
    for n in SIZES:
        depth, length, changes, nonshort = [], [], [], []
        for seed in SEEDS:
            run = run_experiment(
                tdown_clique(n), BgpConfig.standard(30.0), RunSettings(), seed=seed
            )
            report = ExplorationReport.from_log(
                run.route_log, "dest", since=run.failure_time
            )
            depth.append(report.mean_depth())
            length.append(float(report.longest_path_explored()))
            changes.append(
                mean(list(map(float, report.changes_per_node().values())))
            )
            nonshort.append(report.non_shortening_fraction())
        rows.append(
            [n, mean(depth), mean(length), mean(changes), mean(nonshort)]
        )
        depths.append(mean(depth))
    return rows, depths


def test_path_exploration_depth(benchmark):
    rows, depths = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = render_table(
        ["clique_size", "mean_depth", "longest_path", "changes_per_node",
         "non_shortening"],
        rows,
        title="Path exploration in Tdown cliques (route-change traces)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "exploration.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)

    # Exploration deepens with the pool of obsolete alternatives.
    assert depths == sorted(depths), depths
    assert depths[-1] > depths[0]
    # Paths essentially never shorten during Tdown exploration.  (Not an
    # absolute: a neighbor's freshly-adopted stale path can occasionally be
    # shorter than the receiver's current one, so allow a sliver.)
    assert all(row[4] >= 0.99 for row in rows), rows
