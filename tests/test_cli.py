"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, QUICK_FIGURE_KWARGS, build_parser, main


class TestParser:
    def test_every_figure_has_quick_params(self):
        assert set(FIGURES) == set(QUICK_FIGURE_KWARGS)

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestRunCommand:
    def test_run_prints_metrics(self, capsys):
        code = main(
            ["run", "--topology", "clique", "--size", "4", "--mrai", "1",
             "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "convergence time" in out
        assert "looping ratio" in out

    def test_run_with_loop_stats(self, capsys):
        code = main(
            ["run", "--topology", "clique", "--size", "5", "--mrai", "2",
             "--seed", "1", "--loop-stats"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "loop lifetimes observed" in out or "no loops observed" in out

    def test_run_tlong_bclique(self, capsys):
        code = main(
            ["run", "--topology", "b-clique", "--size", "3", "--event",
             "tlong", "--mrai", "1", "--seed", "0"]
        )
        assert code == 0
        assert "tlong-bclique-3" in capsys.readouterr().out

    def test_run_variant_selection(self, capsys):
        code = main(
            ["run", "--topology", "clique", "--size", "4", "--variant",
             "ghost-flushing", "--mrai", "1"]
        )
        assert code == 0
        assert "ghost-flushing" in capsys.readouterr().out

    def test_run_with_damping_flag(self, capsys):
        code = main(
            ["run", "--topology", "b-clique", "--size", "3", "--event",
             "tlong", "--mrai", "1", "--damping-half-life", "20"]
        )
        assert code == 0
        assert "convergence time" in capsys.readouterr().out

    def test_run_verbose_full_report(self, capsys):
        code = main(
            ["run", "--topology", "clique", "--size", "4", "--mrai", "1",
             "--seed", "1", "--verbose"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "updates sent" in out
        assert "individual loops" in out

    def test_run_invalid_tlong_topology_fails_cleanly(self, capsys):
        code = main(
            ["run", "--topology", "clique", "--event", "tlong", "--size", "4"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestFigureCommand:
    def test_quick_figure_renders_table(self, capsys):
        code = main(["figure", "fig4a", "--quick"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig4a" in out
        assert "looping_duration" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    @pytest.mark.parametrize("figure_id", sorted(FIGURES))
    def test_every_quick_figure_terminates_and_renders(self, capsys, figure_id):
        code = main(["figure", figure_id, "--quick"])
        out = capsys.readouterr().out
        assert code == 0
        assert figure_id in out

    def test_quick_figure_with_plot(self, capsys):
        code = main(["figure", "fig4a", "--quick", "--plot"])
        out = capsys.readouterr().out
        assert code == 0
        assert "looping_duration" in out
        assert " |" in out  # the chart's y-axis gutter


class TestTopologyCommand:
    def test_clique_edge_list(self, capsys):
        code = main(["topology", "--kind", "clique", "--size", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 1" in out
        assert out.count("\n") == 1 + 6  # header + 6 edges

    @pytest.mark.parametrize("kind,size", [("chain", 4), ("ring", 5), ("star", 4)])
    def test_named_generator_kinds(self, capsys, kind, size):
        code = main(["topology", "--kind", kind, "--size", str(size)])
        out = capsys.readouterr().out
        assert code == 0
        assert f"{kind}-{size}" in out  # topology name in the header comment

    def test_run_on_named_generator_topology(self, capsys):
        code = main(
            ["run", "--topology", "ring", "--size", "4", "--mrai", "1",
             "--seed", "2"]
        )
        assert code == 0
        assert "tdown-ring-4" in capsys.readouterr().out

    def test_internet_edge_list_round_trips(self, capsys):
        import io

        from repro.topology import internet_like, load_edge_list

        code = main(["topology", "--kind", "internet", "--size", "12",
                     "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert load_edge_list(io.StringIO(out)) == internet_like(12, seed=3)


class TestListCommand:
    def test_list_mentions_everything(self, capsys):
        code = main(["list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig4a" in out and "fig9d" in out and "theory" in out
        assert "ghost-flushing" in out
        assert "b-clique" in out


class TestLintCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("def f():\n    return 1\n")
        code = main(["lint", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "lint clean" in out

    def test_violating_file_exits_one(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import time\n\ndef f():\n    return time.time()\n")
        code = main(["lint", str(target)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP101" in out
        assert "wall-clock" in out
        assert "1 determinism violation(s)" in out

    def test_default_target_is_the_package_and_it_is_clean(self, capsys):
        code = main(["lint"])
        assert code == 0
        assert "lint clean" in capsys.readouterr().out

    def test_json_format_reports_structured_findings(self, tmp_path, capsys):
        import json

        target = tmp_path / "bad.py"
        target.write_text("import time\n\ndef f():\n    return time.time()\n")
        code = main(["lint", "--format", "json", str(target)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["unsuppressed"] == 1
        (violation,) = payload["violations"]
        assert violation["rule"] == "wall-clock"
        assert violation["code"] == "REP101"
        assert violation["line"] == 4
        assert violation["suppressed"] is False

    def test_json_keeps_suppressed_findings_but_exits_zero(
        self, tmp_path, capsys
    ):
        import json

        target = tmp_path / "waived.py"
        target.write_text(
            "def same(a, b):\n"
            "    return a.time == b.time"
            "  # lint: allow(float-time-eq) -- grouping\n"
        )
        code = main(["lint", "--format", "json", str(target)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0  # suppressed findings are visible but not fatal
        assert payload["suppressed"] == 1
        assert payload["unsuppressed"] == 0
        assert payload["violations"][0]["suppressed"] is True

    def test_findings_print_in_deterministic_order(self, tmp_path, capsys):
        (tmp_path / "b.py").write_text("from random import choice\n")
        (tmp_path / "a.py").write_text("import time\nt = time.time()\n")
        main(["lint", str(tmp_path)])
        out = capsys.readouterr().out
        assert out.index("a.py") < out.index("b.py")

    def test_rep107_finding_surfaces_through_the_cli(self, tmp_path, capsys):
        target = tmp_path / "policy.py"
        target.write_text(
            "class P(RoutingPolicy):\n"
            "    def accept_import(self, neighbor, route):\n"
            "        self.seen = route\n"
            "        return True\n"
        )
        code = main(["lint", str(target)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP107" in out
        assert "stateful-policy-hook" in out


class TestStabilityCommand:
    def test_certifies_named_gadget_with_certificate(self, capsys):
        code = main(["stability", "bad-gadget"])
        out = capsys.readouterr().out
        assert code == 0
        assert "UNSAFE" in out
        assert "dispute wheel" in out

    def test_safe_scenario_names_the_method(self, capsys):
        code = main(["stability", "tdown-clique-5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SAFE" in out
        assert "shortest-path" in out

    def test_json_format_carries_the_wheel(self, capsys):
        import json

        code = main(["stability", "disagree", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        report = payload["verdicts"]["disagree"]
        assert report["verdict"] == "unsafe"
        assert sorted(report["wheel"]["rim"]) == [1, 2]

    def test_unknown_scenario_fails_cleanly(self, capsys):
        code = main(["stability", "no-such-gadget"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_check_against_committed_verdicts(self, capsys):
        code = main(
            ["stability", "--check",
             "benchmarks/baselines/STABILITY_verdicts.json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all 7 verdict(s) match" in out

    def test_check_flags_drift(self, tmp_path, capsys):
        import json

        stale = tmp_path / "expected.json"
        stale.write_text(
            json.dumps(
                {"disagree": {"verdict": "safe", "method": "no-dispute-wheel"}}
            )
        )
        code = main(["stability", "disagree", "--check", str(stale)])
        out = capsys.readouterr().out
        assert code == 1
        assert "verdict drift" in out

    def test_observe_runs_the_unsafe_scenarios(self, capsys):
        code = main(["stability", "bad-gadget", "--observe"])
        out = capsys.readouterr().out
        assert code == 0
        assert "persistent-oscillation" in out


class TestDeterminismCommand:
    def test_dual_run_on_small_clique_is_identical(self, capsys):
        code = main(["determinism", "--size", "3", "--mrai", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "IDENTICAL" in out

    def test_sanitized_dual_run_is_identical(self, capsys):
        code = main(
            ["determinism", "--size", "3", "--mrai", "1", "--sanitize"]
        )
        assert code == 0
        assert "IDENTICAL" in capsys.readouterr().out

    def test_run_with_sanitize_flag(self, capsys):
        code = main(
            ["run", "--topology", "clique", "--size", "4", "--mrai", "1",
             "--seed", "1", "--sanitize"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "convergence time" in out

    def test_parallel_runs_identical_to_in_parent_baseline(self, capsys):
        code = main(
            ["determinism", "--size", "3", "--mrai", "1",
             "--runs", "3", "--jobs", "2"]
        )
        assert code == 0
        assert "IDENTICAL" in capsys.readouterr().out


class TestMetricsCommand:
    def test_traced_run_prints_telemetry_table(self, capsys):
        code = main(["metrics", "--size", "4", "--mrai", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry:" in out
        assert "engine.events_executed" in out
        assert "net.messages_sent.Announcement" in out
        assert "timeline :" in out
        assert "harness wall-clock:" in out
        assert "simulate" in out

    def test_exports_validate_and_land_on_disk(self, capsys, tmp_path):
        import json

        from repro.telemetry import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "timeline.jsonl"
        code = main(
            ["metrics", "--size", "4", "--mrai", "1",
             "--chrome-trace", str(trace_path), "--jsonl", str(jsonl_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "schema-validated" in out
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) > 0
        for line in jsonl_path.read_text().splitlines():
            assert "time" in json.loads(line)

    def test_figure_metrics_flag_prints_aggregate(self, capsys):
        code = main(["figure", "fig4a", "--quick", "--metrics"])
        out = capsys.readouterr().out
        assert code == 0
        assert "aggregated telemetry (all trials):" in out
        assert "engine.events_executed" in out

    def test_determinism_metrics_flag_proves_inertness(self, capsys):
        code = main(
            ["determinism", "--size", "3", "--mrai", "1", "--metrics"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "IDENTICAL" in out
        assert "telemetry on/off digests MATCH" in out


class TestJobsFlag:
    def test_quick_figure_with_jobs(self, capsys):
        code = main(["figure", "fig4a", "--quick", "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig4a" in out

    def test_driver_without_jobs_support_still_runs(self, capsys):
        # The theory figure has no sweep to parallelize; --jobs is noted
        # on stderr and ignored rather than crashing the driver.
        code = main(["figure", "theory", "--quick", "--jobs", "2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "--jobs" in captured.err


class TestSweepCommand:
    def test_basic_sweep_prints_journal_and_table(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        code = main(
            [
                "sweep", "--sizes", "3", "--trials", "1",
                "--mrai", "1.0", "--journal", str(journal),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "journal:" in out
        assert "size" in out and "ok" in out
        assert journal.exists()

    def test_resume_reuses_journaled_trials(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        assert main(
            [
                "sweep", "--sizes", "3", "--trials", "1",
                "--mrai", "1.0", "--journal", str(journal),
            ]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "sweep", "--sizes", "3,4", "--trials", "1",
                "--mrai", "1.0", "--journal", str(journal), "--resume",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        # The x=3 trial came back from the journal, not a re-run.
        assert "journal: 1 trial record(s) loaded" in out

    def test_sweep_with_resilience_flags_reports_supervision(
        self, tmp_path, capsys
    ):
        journal = tmp_path / "sweep.jsonl"
        code = main(
            [
                "sweep", "--sizes", "3", "--trials", "1", "--mrai", "1.0",
                "--journal", str(journal), "--jobs", "2",
                "--retries", "1", "--trial-timeout", "60",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "resilience:" in out

    def test_bad_sizes_rejected(self, tmp_path, capsys):
        code = main(
            ["sweep", "--sizes", ",", "--journal", str(tmp_path / "j.jsonl")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestResilienceFlags:
    def test_figure_accepts_retries(self, capsys):
        code = main(
            ["figure", "fig4a", "--quick", "--jobs", "2", "--retries", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fig4a" in out

    def test_theory_notes_ignored_resilience_flags(self, capsys):
        code = main(["figure", "theory", "--quick", "--retries", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "--retries" in captured.err

    def test_determinism_with_policy(self, capsys):
        code = main(
            [
                "determinism", "--size", "3", "--runs", "3",
                "--jobs", "2", "--retries", "1",
            ]
        )
        assert code == 0
        assert "IDENTICAL" in capsys.readouterr().out
