"""Unit tests for the machine-checkable observations."""

import pytest

from repro.core import (
    check_duration_coupling,
    check_enhancement_ranking,
    check_linear_in_mrai,
    check_ratio_constant,
    check_wrate_regression,
)
from repro.errors import AnalysisError


class TestObs1Coupling:
    def test_tight_coupling_holds(self):
        check = check_duration_coupling([95, 190], [100, 200])
        assert check.holds

    def test_large_gap_fails(self):
        check = check_duration_coupling([10, 20], [100, 200])
        assert not check.holds

    def test_zero_convergence_runs_skipped(self):
        check = check_duration_coupling([0, 95], [0, 100])
        assert check.holds

    def test_all_zero_is_vacuous_failure(self):
        check = check_duration_coupling([0], [0])
        assert not check.holds

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            check_duration_coupling([1], [1, 2])


class TestLinearInMrai:
    def test_perfect_line_holds(self):
        check = check_linear_in_mrai([5, 10, 20, 30], [50, 100, 200, 300])
        assert check.holds

    def test_noisy_line_holds(self):
        check = check_linear_in_mrai([5, 10, 20, 30], [52, 96, 205, 295])
        assert check.holds

    def test_flat_series_fails(self):
        check = check_linear_in_mrai([5, 10, 20, 30], [100, 100, 100, 100])
        assert not check.holds  # slope must be positive

    def test_negative_slope_fails(self):
        check = check_linear_in_mrai([5, 10, 20], [300, 200, 100])
        assert not check.holds


class TestObs2RatioConstant:
    def test_flat_ratio_holds(self):
        assert check_ratio_constant([0.65, 0.66, 0.64, 0.65]).holds

    def test_wild_ratio_fails(self):
        assert not check_ratio_constant([0.1, 0.9, 0.2, 0.8]).holds

    def test_empty_input_raises(self):
        with pytest.raises(AnalysisError):
            check_ratio_constant([])


class TestObs3Ranking:
    def metrics(self, **overrides):
        base = {
            "standard": 1000.0,
            "ssld": 900.0,
            "wrate": 1100.0,
            "assertion": 300.0,
            "ghost-flushing": 150.0,
        }
        base.update(overrides)
        return base

    def test_paper_shape_holds(self):
        checks = check_enhancement_ranking(self.metrics())
        assert all(check.holds for check in checks)

    def test_ineffective_assertion_fails(self):
        checks = check_enhancement_ranking(self.metrics(assertion=950.0))
        failed = [c for c in checks if not c.holds]
        assert any("assertion" in c.name for c in failed)

    def test_regressing_ssld_fails(self):
        checks = check_enhancement_ranking(self.metrics(ssld=1500.0))
        failed = [c for c in checks if not c.holds]
        assert any("ssld" in c.name for c in failed)

    def test_missing_variant_raises(self):
        with pytest.raises(AnalysisError, match="missing variants"):
            check_enhancement_ranking({"standard": 1.0})

    def test_loop_free_standard_is_inconclusive(self):
        checks = check_enhancement_ranking(self.metrics(standard=0.0))
        assert len(checks) == 1 and not checks[0].holds


class TestWrateRegression:
    def test_regression_detected(self):
        assert check_wrate_regression(100.0, 1000.0).holds

    def test_improvement_fails_the_check(self):
        assert not check_wrate_regression(100.0, 50.0).holds

    def test_zero_baseline_inconclusive(self):
        assert not check_wrate_regression(0.0, 50.0).holds

    def test_str_rendering(self):
        check = check_wrate_regression(100.0, 1000.0)
        assert "HOLDS" in str(check)
        assert "VIOLATED" in str(check_wrate_regression(100.0, 50.0))
