"""BGP control-plane messages.

The two message kinds that drive convergence dynamics — announcements
(UPDATE with NLRI) and withdrawals (UPDATE with withdrawn routes) — plus the
two session-management messages the churn experiments need: KEEPALIVE
(liveness when the session layer is enabled) and OPEN (the handshake that
re-establishes a session after a reset, triggering the RFC 1771 initial
full-table exchange).  NOTIFICATION is still abstracted away.

Prefixes are opaque strings (e.g. ``"d0"``); the simulations use one prefix,
but the speaker handles any number.
"""

from __future__ import annotations

from dataclasses import dataclass

from .path import AsPath

Prefix = str
"""Type alias for destination identifiers."""


@dataclass(frozen=True, slots=True)
class Announcement:
    """An UPDATE advertising ``path`` as the sender's route to ``prefix``.

    ``path`` is the path *as sent*: the sender's own AS number is the head.
    """

    prefix: Prefix
    path: AsPath

    def __post_init__(self) -> None:
        if self.path.is_empty:
            raise ValueError("an announcement must carry a non-empty AS path")

    @property
    def sender(self) -> int:
        """The advertising AS (head of the path)."""
        assert self.path.head is not None
        return self.path.head

    def __repr__(self) -> str:
        return f"Announce[{self.prefix} via {self.path!r}]"


@dataclass(frozen=True, slots=True)
class Withdrawal:
    """An UPDATE withdrawing the sender's previously-announced route."""

    prefix: Prefix

    def __repr__(self) -> str:
        return f"Withdraw[{self.prefix}]"


@dataclass(frozen=True, slots=True)
class Keepalive:
    """A KEEPALIVE: refreshes the receiver's hold timer, carries no routes.

    Only exchanged when the speaker's session layer is enabled
    (``BgpConfig.hold_time > 0``); the paper's experiments model instant
    interface-level failure detection and never need them.
    """

    #: Keepalives are pure background heartbeat: their delivery and
    #: processing events are scheduled as housekeeping, so an armed
    #: keepalive schedule never blocks run-to-quiescence.
    HOUSEKEEPING = True

    def __repr__(self) -> str:
        return "Keepalive"


@dataclass(frozen=True, slots=True)
class Open:
    """An OPEN: (re-)establishes the session with the receiving peer.

    Exchanged only by the ConnectRetry machinery after a session loss (the
    boot-time peering is implicit, as in the paper).  ``echo=True`` marks
    the passive reply to a received OPEN, so crossing handshakes terminate
    instead of echoing forever.
    """

    echo: bool = False

    def __repr__(self) -> str:
        return f"Open[{'echo' if self.echo else 'syn'}]"


def is_update(message: object) -> bool:
    """True for the messages that count toward convergence time.

    The paper measures convergence as "the time the last BGP update message
    is sent"; both announcements and withdrawals are updates (OPENs and
    KEEPALIVEs are not).
    """
    return isinstance(message, (Announcement, Withdrawal))
