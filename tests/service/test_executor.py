"""The job executor, driven in-process (no daemon, no socket).

The headline assertion lives here in its cheapest form: a sweep job run
through the service executor produces per-trial digests bit-identical to
a foreground ``checkpointed_sweep`` of the same resolved plan.
"""

import json

import pytest

from repro.experiments import SweepJournal, checkpointed_sweep
from repro.service import (
    JobSpec,
    JobView,
    ServiceState,
    execute_job,
    resolve_sweep_plan,
    sweep_digest,
)
from repro.telemetry.timeline import validate_chrome_trace


SWEEP_PARAMS = {"family": "tdown", "xs": [3.0, 4.0], "trials": 2}


def make_view(job_id: str, kind: str, params: dict) -> JobView:
    return JobView(job_id=job_id, spec=JobSpec(kind=kind, params=dict(params)))


@pytest.fixture
def state(tmp_path) -> ServiceState:
    service_state = ServiceState(tmp_path / "state")
    service_state.ensure_layout()
    return service_state


class TestSweepExecution:
    def test_sweep_job_completes_with_digests(self, state):
        events = []
        outcome = execute_job(
            make_view("job-1", "sweep", SWEEP_PARAMS), state, events.append
        )
        assert outcome.state == "done"
        assert outcome.detail["points"] == 2
        assert outcome.detail["trials"] == 4
        assert outcome.detail["ok"] == 4
        assert len(outcome.detail["digest"]) == 64

        kinds = [event["event"] for event in events]
        assert kinds.count("trial") == 4
        assert kinds.count("point") == 2
        assert kinds.count("snapshot") == 1
        # The snapshot aggregation is the last metrics the watcher sees.
        assert kinds.index("snapshot") > kinds.index("point")

    def test_digests_match_foreground_sweep(self, state, tmp_path):
        outcome = execute_job(make_view("job-1", "sweep", SWEEP_PARAMS), state)
        service_records, _ = SweepJournal(state.journal_path("job-1")).load()

        plan = resolve_sweep_plan(SWEEP_PARAMS)
        foreground = SweepJournal(tmp_path / "foreground.jsonl")
        checkpointed_sweep(
            plan.xs,
            plan.make_scenario,
            plan.make_config,
            journal=foreground,
            seeds=plan.seeds,
            settings=plan.settings,
            jobs=1,
            digests=True,
        )
        foreground_records = foreground.records
        foreground.close()

        service_map = {k: r.digest for k, r in service_records.items()}
        foreground_map = {k: r.digest for k, r in foreground_records.items()}
        assert service_map == foreground_map
        assert all(foreground_map.values())
        assert outcome.detail["digest"] == sweep_digest(foreground_records)

    def test_timeline_artifact_is_valid_chrome_trace(self, state):
        outcome = execute_job(make_view("job-1", "sweep", SWEEP_PARAMS), state)
        payload = json.loads(
            (state.artifact_dir("job-1") / "timeline.json").read_text()
        )
        assert validate_chrome_trace(payload) > 0
        assert outcome.detail["timeline"].endswith("timeline.json")

    def test_rerun_skips_journaled_trials(self, state):
        view = make_view("job-1", "sweep", SWEEP_PARAMS)
        execute_job(view, state)
        events = []
        outcome = execute_job(view, state, events.append)
        assert outcome.state == "done"
        assert outcome.detail["trials"] == 4
        # Nothing re-ran, so no per-trial events the second time.
        assert not [e for e in events if e["event"] == "trial"]

    def test_cancellation_preserves_finished_trials(self, state):
        seen = []

        def cancel_after_first_point() -> bool:
            return any(event["event"] == "point" for event in seen)

        outcome = execute_job(
            make_view("job-1", "sweep", SWEEP_PARAMS),
            state,
            seen.append,
            cancel_after_first_point,
        )
        assert outcome.state == "cancelled"
        records, _ = SweepJournal(state.journal_path("job-1")).load()
        assert 0 < len(records) < 4  # first point journaled, sweep unfinished

        # Re-execution resumes and completes with full digests.
        final = execute_job(make_view("job-1", "sweep", SWEEP_PARAMS), state)
        assert final.state == "done"
        assert final.detail["trials"] == 4

    def test_supervised_sweep_reports_supervision(self, state):
        params = dict(SWEEP_PARAMS, jobs=2, retries=1)
        outcome = execute_job(make_view("job-1", "sweep", params), state)
        assert outcome.state == "done"
        assert outcome.detail["supervision"]["trials"] == 4
        assert outcome.detail["supervision"]["completed"] == 4


class TestOtherKinds:
    def test_figure_job_writes_artifact(self, state):
        events = []
        outcome = execute_job(
            make_view("job-1", "figure", {"id": "theory", "quick": True}),
            state,
            events.append,
        )
        assert outcome.state == "done"
        artifact = state.artifact_dir("job-1") / "theory.txt"
        assert artifact.exists() and artifact.read_text().strip()
        assert any(event["event"] == "log" for event in events)

    def test_unknown_kind_fails_without_raising(self, state):
        outcome = execute_job(make_view("job-1", "mystery", {}), state)
        assert outcome.state == "failed"
        assert "mystery" in outcome.detail["error"]

    def test_bad_figure_id_fails_without_raising(self, state):
        outcome = execute_job(
            make_view("job-1", "figure", {"id": "fig99"}), state
        )
        assert outcome.state == "failed"
        assert outcome.detail["kind"] == "ServiceError"
