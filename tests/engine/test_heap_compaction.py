"""Regression tests for cancelled-event heap compaction.

MRAI restart churn follows a cancel + re-arm pattern: every update sent
cancels the pair's pending timer event and schedules a fresh one.  Lazy
deletion used to leave each dead entry in the heap until its firing time
came around — after 1k cancels the scheduler was still sifting pushes and
pops past ~1k corpses.  The scheduler now counts cancellations and
rebuilds the heap without them once they are numerous (>= 64) and the
majority; these tests pin the bound and prove compaction cannot perturb
pop order.
"""

import random

from repro.bgp.mrai import MraiManager
from repro.engine import Scheduler


def test_heap_stays_bounded_after_1k_cancels():
    scheduler = Scheduler()
    events = [
        scheduler.call_at(float(i + 1), lambda: None, name=f"timer:{i}")
        for i in range(1000)
    ]
    survivor = scheduler.call_at(2000.0, lambda: None, name="survivor")
    for event in events:
        event.cancel()
    # Compaction sheds dead entries as their share crosses one half; only
    # a sub-threshold residue (< 64 cancelled) may remain.
    assert scheduler.pending < 128
    assert scheduler.substantive_pending == 1
    assert scheduler.peek_time() == survivor.time


def test_mrai_restart_churn_keeps_heap_small():
    scheduler = Scheduler()
    fired = []
    mrai = MraiManager(
        scheduler,
        interval=30.0,
        jitter=(0.75, 1.0),
        rng=random.Random(7),
        on_expiry=lambda peer, prefix: fired.append((peer, prefix)),
    )
    # 1k re-advertisements for the same pair: each mark_sent cancels the
    # running timer and re-arms it.
    for _ in range(1000):
        mrai.mark_sent(1, "d0")
    assert mrai.active_timers() == 1
    assert scheduler.pending < 128
    scheduler.run()
    assert fired == [(1, "d0")]


def test_compaction_preserves_pop_order():
    scheduler = Scheduler()
    fired = []
    rng = random.Random(11)
    events = []
    for i in range(600):
        time = rng.uniform(0.0, 100.0)
        events.append(
            (time, scheduler.call_at(time, lambda t=time: fired.append(t)))
        )
    cancelled = set()
    for index in rng.sample(range(600), 400):
        events[index][1].cancel()
        cancelled.add(index)
    expected = sorted(
        time for index, (time, _) in enumerate(events) if index not in cancelled
    )
    scheduler.run()
    assert fired == expected


def test_interleaved_schedule_and_cancel_fires_every_survivor():
    scheduler = Scheduler()
    fired = []
    previous = None
    # The MRAI shape at scheduler level: hundreds of restart cycles with
    # the compactor kicking in mid-stream, plus a live tail that must
    # still fire in order.
    for i in range(500):
        if previous is not None:
            previous.cancel()
        previous = scheduler.call_at(
            1000.0 + i, lambda i=i: fired.append(i), name="restart"
        )
    scheduler.call_at(1.0, lambda: fired.append("early"))
    scheduler.run()
    assert fired == ["early", 499]
    assert scheduler.pending == 0
