"""Packets, their fates, and the static forwarding-graph walk.

The simulation's loop indicator is **TTL exhaustion** (§4.2): packets start
with TTL 128 and the TTL drops by one per AS hop; a packet that dies of TTL
exhaustion must have been caught in a routing loop.  :func:`walk` computes a
packet's fate against one :class:`~repro.dataplane.fib.ForwardingGraph`
snapshot.  Because the graph is functional (one next hop per node), a walk
that revisits any node is provably stuck in a cycle and will burn its whole
TTL there — the walk short-circuits as soon as the revisit is seen instead of
iterating all 128 hops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from .fib import Destination, ForwardingGraph, MultiPrefixFib

DEFAULT_TTL = 128
"""The paper's initial TTL value."""


class PacketFate(enum.Enum):
    """What ultimately happened to a packet."""

    DELIVERED = "delivered"
    DROPPED_NO_ROUTE = "dropped-no-route"
    TTL_EXPIRED = "ttl-expired"


@dataclass(frozen=True)
class WalkResult:
    """The outcome of forwarding one packet through a static graph.

    Attributes
    ----------
    fate:
        Terminal outcome.
    hops:
        AS hops actually taken (for TTL expiry this equals the TTL).
    loop:
        The cycle the packet entered, as a canonical node tuple (smallest
        node first), or ``None`` when it never looped.  A packet can enter a
        loop only by expiring in it: in a *static* functional graph there is
        no escape from a cycle, so ``loop is not None`` iff
        ``fate is TTL_EXPIRED``... unless the TTL dies of sheer path length
        first, in which case ``loop`` stays ``None``.
    """

    fate: PacketFate
    hops: int
    loop: Optional[Tuple[int, ...]] = None

    @property
    def looped(self) -> bool:
        return self.loop is not None


def canonical_cycle(cycle: Tuple[int, ...]) -> Tuple[int, ...]:
    """Rotate a cycle so its smallest node comes first (stable identity)."""
    if not cycle:
        return cycle
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


def walk(
    graph: ForwardingGraph,
    source: int,
    ttl: int = DEFAULT_TTL,
) -> WalkResult:
    """Forward a packet from ``source`` until delivery, drop, or TTL death.

    The destination is implicit in the graph: any node whose next hop is
    itself delivers locally.  The source's own entry is consulted first; a
    source with no route drops immediately (0 hops).
    """
    if ttl < 1:
        raise ValueError(f"ttl must be >= 1, got {ttl}")
    visited = {source: 0}
    trail = [source]
    node = source
    hops = 0
    while True:
        if graph.delivers_locally(node):
            return WalkResult(PacketFate.DELIVERED, hops)
        next_hop = graph.next_hop(node)
        if next_hop is None:
            return WalkResult(PacketFate.DROPPED_NO_ROUTE, hops)
        hops += 1
        if hops > ttl:
            # Died of path length without provably looping.
            return WalkResult(PacketFate.TTL_EXPIRED, ttl)
        node = next_hop
        if node in visited:
            # Entered a cycle; in a static graph the packet now spins until
            # its TTL is gone.
            cycle = tuple(trail[visited[node]:])
            return WalkResult(
                PacketFate.TTL_EXPIRED, ttl, loop=canonical_cycle(cycle)
            )
        visited[node] = len(trail)
        trail.append(node)


def walk_lpm(
    fib: MultiPrefixFib,
    source: int,
    destination: Destination,
    ttl: int = DEFAULT_TTL,
) -> WalkResult:
    """:func:`walk`, but each hop resolves ``destination`` by longest match.

    Every node consults its own multi-prefix table, so mid-deaggregation a
    packet can ride a /22 cover at one hop and a /24 specific at the next —
    exactly the mixed-state forwarding that makes aggregation events loop.
    Per fixed destination the graph is still functional (one next hop per
    node), so revisit-short-circuiting is as sound as in :func:`walk`.
    """
    if ttl < 1:
        raise ValueError(f"ttl must be >= 1, got {ttl}")
    visited = {source: 0}
    trail = [source]
    node = source
    hops = 0
    while True:
        next_hop = fib.next_hop(node, destination)
        if next_hop == node:
            return WalkResult(PacketFate.DELIVERED, hops)
        if next_hop is None:
            return WalkResult(PacketFate.DROPPED_NO_ROUTE, hops)
        hops += 1
        if hops > ttl:
            return WalkResult(PacketFate.TTL_EXPIRED, ttl)
        node = next_hop
        if node in visited:
            cycle = tuple(trail[visited[node]:])
            return WalkResult(
                PacketFate.TTL_EXPIRED, ttl, loop=canonical_cycle(cycle)
            )
        visited[node] = len(trail)
        trail.append(node)
