"""Experiment scenarios: a topology plus the failure event.

A :class:`Scenario` fixes *what breaks where*: the topology, the destination
AS (which originates the studied prefix), and the event.  The paper's §4.1
events are **Tdown** (the destination becomes unreachable — the origin
withdraws) and **Tlong** (one transit link fails; the destination stays
reachable over less-preferred paths).

Three *churn* events extend the family beyond the paper's single-failure
model, exercising the session lifecycle:

* **Treset** — the transport session on one link is reset (link stays up);
  both speakers purge, re-establish, and re-exchange full tables.
* **Tcrash** — a whole router crashes (queued messages, timers, RIBs lost),
  optionally restarting cold after ``restart_after`` seconds.
* **Tflap** — one link fails and recovers ``flap_count`` times with period
  ``flap_period``, driving repeated withdraw/re-advertise waves.

The module provides the paper's concrete scenario families —
Clique + Tdown, B-Clique + Tlong, Internet-like graphs with both events —
plus churn variants of the clique and B-Clique setups.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigError, TopologyError
from ..topology import (
    Topology,
    b_clique,
    choose_destination,
    choose_failure_link,
    clique,
    internet_like,
    provider_load,
)

DEFAULT_PREFIX = "dest"
"""The prefix name used by all built-in scenarios."""


class EventKind(enum.Enum):
    """The two §4.1 topology-change events, plus the churn extensions."""

    TDOWN = "tdown"
    TLONG = "tlong"
    TRESET = "treset"
    TCRASH = "tcrash"
    TFLAP = "tflap"


#: Events whose trigger is a specific link (``failed_link`` required).
_LINK_EVENTS = frozenset({EventKind.TLONG, EventKind.TRESET, EventKind.TFLAP})


@dataclass(frozen=True)
class Scenario:
    """One fully-specified experiment setup.

    ``failed_link`` names the link for Tlong (failed), Treset (session
    reset), and Tflap (flapping).  ``crash_node``/``restart_after`` apply to
    Tcrash only; ``flap_period``/``flap_count`` to Tflap only.
    """

    name: str
    topology: Topology
    destination: int
    event: EventKind
    failed_link: Optional[Tuple[int, int]] = None
    prefix: str = DEFAULT_PREFIX
    crash_node: Optional[int] = None
    restart_after: Optional[float] = None
    flap_period: Optional[float] = None
    flap_count: int = 1

    def __post_init__(self) -> None:
        if not self.topology.has_node(self.destination):
            raise ConfigError(
                f"destination {self.destination} not in topology {self.topology.name!r}"
            )
        if self.event in _LINK_EVENTS:
            if self.failed_link is None:
                raise ConfigError(
                    f"a {self.event.value} scenario must name the link it targets"
                )
            u, v = self.failed_link
            if not self.topology.has_edge(u, v):
                raise ConfigError(f"link ({u}, {v}) not in topology")
            if self.event is not EventKind.TRESET and self.topology.is_cut_edge(u, v):
                # A session reset never takes the link down, so a cut edge
                # is fine there; Tlong/Tflap actually disconnect it.
                raise ConfigError(
                    f"link ({u}, {v}) is a cut edge; failing it would disconnect "
                    "the graph, which contradicts the event's definition"
                )
        elif self.failed_link is not None:
            raise ConfigError(
                f"a {self.event.value} scenario must not name a failed link"
            )
        if self.event is EventKind.TCRASH:
            if self.crash_node is None:
                raise ConfigError("a Tcrash scenario must name the node to crash")
            if not self.topology.has_node(self.crash_node):
                raise ConfigError(f"crash node {self.crash_node} not in topology")
            if self.crash_node == self.destination:
                raise ConfigError(
                    "crashing the destination is a Tdown event, not a Tcrash"
                )
            if self.restart_after is not None and self.restart_after <= 0:
                raise ConfigError(
                    f"restart_after must be positive, got {self.restart_after}"
                )
        elif self.crash_node is not None or self.restart_after is not None:
            raise ConfigError(
                f"a {self.event.value} scenario must not set crash fields"
            )
        if self.event is EventKind.TFLAP:
            if self.flap_period is None or self.flap_period <= 0:
                raise ConfigError(
                    f"a Tflap scenario needs a positive flap_period, got "
                    f"{self.flap_period}"
                )
            if self.flap_count < 1:
                raise ConfigError(f"flap_count must be >= 1, got {self.flap_count}")
        elif self.flap_period is not None:
            raise ConfigError(
                f"a {self.event.value} scenario must not set a flap period"
            )

    @property
    def source_nodes(self) -> list:
        """Every AS that hosts a traffic source (all but the destination)."""
        return [n for n in self.topology.nodes if n != self.destination]


# ----------------------------------------------------------------------
# The paper's scenario families
# ----------------------------------------------------------------------


def tdown_clique(n: int) -> Scenario:
    """Tdown in an n-clique: the classic convergence worst case."""
    return Scenario(
        name=f"tdown-clique-{n}",
        topology=clique(n),
        destination=0,
        event=EventKind.TDOWN,
    )


def tlong_bclique(n: int) -> Scenario:
    """Tlong in a size-n B-Clique: fail the edge-to-core link (0, n).

    "AS 0 is chosen as the destination AS and the link between AS 0 and n is
    failed during simulation to induce a Tlong event."
    """
    return Scenario(
        name=f"tlong-bclique-{n}",
        topology=b_clique(n),
        destination=0,
        event=EventKind.TLONG,
        failed_link=(0, n),
    )


def tdown_internet(n: int, seed: int = 0) -> Scenario:
    """Tdown in an Internet-like graph; destination drawn from the stubs."""
    topo = internet_like(n, seed=seed)
    destination = choose_destination(topo, seed=seed)
    return Scenario(
        name=f"tdown-internet-{n}-s{seed}",
        topology=topo,
        destination=destination,
        event=EventKind.TDOWN,
    )


def tlong_internet(n: int, seed: int = 0, candidates: int = 8) -> Scenario:
    """Tlong in an Internet-like graph: fail the destination's primary link.

    Candidate destinations are low-degree nodes whose link can fail without
    disconnecting them (Tlong's definition).  Among the ``candidates``
    lowest-degree qualifying nodes, the one with the most *dominant* primary
    provider is selected — failing a dominant primary is the event the paper
    studies ("forces the rest of the network to use less preferred paths");
    failing a balanced provider's link converges almost silently.  The
    ``seed`` determines the topology and breaks remaining ties.
    """
    topo = internet_like(n, seed=seed)
    ranked = sorted(topo.nodes, key=lambda x: (topo.degree(x), x))
    best: Optional[Tuple[float, int, Tuple[int, int]]] = None
    examined = 0
    for destination in ranked:
        if topo.degree(destination) < 2:
            continue
        try:
            failed = choose_failure_link(topo, destination, seed=seed)
        except TopologyError:
            continue
        examined += 1
        loads = provider_load(topo, destination)
        total = sum(loads.values()) or 1
        dominance = loads[failed[1]] / total
        key = (dominance, -destination)
        if best is None or key > best[0:2]:
            best = (dominance, -destination, failed)
        if examined >= candidates:
            break
    if best is None:
        raise ConfigError(f"no Tlong-capable destination in internet_like({n}, {seed})")
    destination = -best[1]
    return Scenario(
        name=f"tlong-internet-{n}-s{seed}",
        topology=topo,
        destination=destination,
        event=EventKind.TLONG,
        failed_link=best[2],
    )


# ----------------------------------------------------------------------
# Churn scenario families (session lifecycle extensions)
# ----------------------------------------------------------------------


def treset_clique(n: int, link: Optional[Tuple[int, int]] = None) -> Scenario:
    """Treset in an n-clique: reset one session, watch the re-exchange.

    Defaults to the (0, 1) session — destination-adjacent, so the reset
    peer must re-learn its best (direct) route to the prefix.
    """
    link = link or (0, 1)
    return Scenario(
        name=f"treset-clique-{n}",
        topology=clique(n),
        destination=0,
        event=EventKind.TRESET,
        failed_link=link,
    )


def tcrash_clique(
    n: int, crash: int = 1, restart_after: Optional[float] = 30.0
) -> Scenario:
    """Tcrash in an n-clique: crash a transit AS, optionally restart it.

    The destination stays reachable (every survivor keeps a direct link to
    AS 0), so the interesting dynamics are the withdraw wave at the crash
    and the cold re-learning at the restart.
    """
    return Scenario(
        name=f"tcrash-clique-{n}",
        topology=clique(n),
        destination=0,
        event=EventKind.TCRASH,
        crash_node=crash,
        restart_after=restart_after,
    )


def tflap_bclique(n: int, period: float, count: int = 3) -> Scenario:
    """Tflap in a size-n B-Clique: flap the edge-to-core link (0, n).

    The same link Tlong fails once, now failing and recovering ``count``
    times ``period`` seconds apart — the loop-inducing event repeated
    faster than (or slower than) the network can converge.
    """
    return Scenario(
        name=f"tflap-bclique-{n}-p{period}",
        topology=b_clique(n),
        destination=0,
        event=EventKind.TFLAP,
        failed_link=(0, n),
        flap_period=period,
        flap_count=count,
    )


# ----------------------------------------------------------------------
# Trial adapters: (x, seed) -> Scenario, module-level so they pickle
# ----------------------------------------------------------------------
#
# Sweeps call ``make_scenario(x, seed)``; the family constructors above
# take domain parameters (clique size, flap period...).  These adapters fix
# the translation once, at module scope, so parallel sweeps can ship them
# to worker processes by reference (see repro.experiments.spec).  Fixed
# parameters (a constant topology size under an MRAI sweep, a flap count)
# are bound with ``factory_ref(adapter, size=...)``.


def clique_tdown_trial(x: float, seed: int) -> Scenario:
    """x is the clique size (Figures 4a, 6a, 8a/8b, 9a/9b...)."""
    return tdown_clique(int(x))


def bclique_tlong_trial(x: float, seed: int) -> Scenario:
    """x is the B-Clique size (Figures 4b, 6b)."""
    return tlong_bclique(int(x))


def internet_tdown_trial(x: float, seed: int) -> Scenario:
    """x is the Internet-like graph size; the seed varies the graph."""
    return tdown_internet(int(x), seed=seed)


def internet_tlong_trial(x: float, seed: int) -> Scenario:
    """x is the Internet-like graph size; the seed varies the graph."""
    return tlong_internet(int(x), seed=seed)


def clique_tdown_fixed(x: float, seed: int, *, size: int) -> Scenario:
    """Fixed-size clique Tdown for sweeps whose x is something else (MRAI)."""
    return tdown_clique(size)


def bclique_tlong_fixed(x: float, seed: int, *, size: int) -> Scenario:
    """Fixed-size B-Clique Tlong for MRAI-on-the-x-axis sweeps."""
    return tlong_bclique(size)


def bclique_tflap_trial(x: float, seed: int, *, size: int, count: int = 3) -> Scenario:
    """x is the flap period over a fixed-size B-Clique (churn sweeps)."""
    return tflap_bclique(size, period=x, count=count)


def clique_treset_trial(x: float, seed: int) -> Scenario:
    """x is the clique size; the (0, 1) session is reset."""
    return treset_clique(int(x))


def clique_tcrash_trial(
    x: float, seed: int, *, restart_after: Optional[float] = 30.0
) -> Scenario:
    """x is the clique size; transit AS 1 crashes."""
    return tcrash_clique(int(x), restart_after=restart_after)


def custom_tdown(topology: Topology, destination: int, name: str = "") -> Scenario:
    """Tdown on a user-supplied topology."""
    return Scenario(
        name=name or f"tdown-{topology.name}",
        topology=topology,
        destination=destination,
        event=EventKind.TDOWN,
    )


def custom_tlong(
    topology: Topology,
    destination: int,
    failed_link: Tuple[int, int],
    name: str = "",
) -> Scenario:
    """Tlong on a user-supplied topology and link."""
    return Scenario(
        name=name or f"tlong-{topology.name}",
        topology=topology,
        destination=destination,
        event=EventKind.TLONG,
        failed_link=failed_link,
    )
