"""Static policy-stability analysis: dispute wheels and safety certificates.

The paper studies *transient* loops: under its shortest-path policy every
loop eventually dies because the protocol provably converges.  General
path-vector policies have no such guarantee — Griffin, Shepherd & Wilfong's
Stable Paths Problem (SPP) formulation shows that conflicting preferences
can oscillate forever, and that the combinatorial witness of such a
conflict is a **dispute wheel**: a cycle of nodes each preferring the route
*through the next rim node* over its own direct ("spoke") route.  No
dispute wheel ⇒ the system is safe (converges from every state); a wheel is
the structure every divergent instance contains.

This module decides the question **statically** — no event is ever
scheduled:

* :func:`extract_policy_graph` walks a topology plus per-node
  :class:`~repro.bgp.policy.RoutingPolicy` objects and materializes, for
  one destination, every *permitted path*: a simple path that survives the
  export filter at each hop and the import filter at its owner, ranked by
  the owner's ``preference_key`` (the same hook the live decision process
  uses, so the static lattice and the simulator can never disagree).
  Paths are interned :class:`~repro.bgp.path.AsPath` instances.
* :func:`find_dispute_wheel` searches the ranked lattice for a rim cycle
  and returns a machine-readable :class:`DisputeWheel` certificate naming
  the rim nodes, spoke paths, rim paths, and both rankings at every rim
  node.  Certificates are self-checking (:meth:`DisputeWheel.validate`).
* :func:`certify` / :func:`certify_scenario` combine the wheel search with
  two structural short-cuts that scale past exhaustive path enumeration:
  shortest-path policies can never build a wheel (rim edges would have to
  sum to non-positive length), and Gao-Rexford policies are safe whenever
  the relationship assignment is pairwise-consistent and the
  provider→customer digraph is acyclic (the classic Gao & Rexford
  conditions).  The verdict is ``SAFE``, ``UNSAFE`` (with the wheel as
  certificate), or ``UNKNOWN`` when enumeration or search was truncated
  by :class:`SearchLimits`.

The analyzer's contract with the simulator: a ``SAFE`` verdict means every
simulation of the scenario quiesces; an ``UNSAFE`` verdict names a dispute
wheel, the structure behind persistent oscillation (necessary for
divergence — DISAGREE-style instances carry a wheel yet happen to converge
under asynchronous timing, which is exactly the distinction the
``repro.experiments.oscillation`` runner measures dynamically).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..bgp.path import AsPath
from ..bgp.policy import RoutingPolicy, ShortestPathPolicy
from ..bgp.relationships import GaoRexfordPolicy, Relationship
from ..bgp.route import Route, local_route
from ..errors import AnalysisError, ProtocolError
from ..topology import Topology

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..experiments.scenarios import Scenario
    from ..telemetry import MetricsRegistry

PolicyFactory = Callable[[int], RoutingPolicy]


class Verdict(enum.Enum):
    """The certifier's answer for one (topology, policies, destination)."""

    SAFE = "safe"
    UNSAFE = "unsafe"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class SearchLimits:
    """Caps keeping the exhaustive analysis bounded on large instances.

    Exceeding any cap never produces a wrong answer — it downgrades the
    verdict to ``UNKNOWN`` (unless a wheel was already found, which stays
    valid evidence regardless of truncation).
    """

    max_paths_per_node: int = 128
    max_paths_total: int = 8192
    max_search_steps: int = 250_000

    def __post_init__(self) -> None:
        if self.max_paths_per_node < 1:
            raise AnalysisError("max_paths_per_node must be >= 1")
        if self.max_paths_total < 1:
            raise AnalysisError("max_paths_total must be >= 1")
        if self.max_search_steps < 1:
            raise AnalysisError("max_search_steps must be >= 1")


@dataclass(frozen=True)
class PermittedPath:
    """One permitted path at one node, in the paper's node notation.

    ``nodes`` starts at the owning node and ends at the destination —
    exactly :meth:`BgpSpeaker.full_path`'s shape.  ``key`` is the owner's
    ``preference_key`` for the corresponding route (smaller = preferred),
    ``rank`` the path's position in the owner's ranked list (0 = best).
    """

    nodes: Tuple[int, ...]
    path: AsPath
    key: Tuple
    rank: int

    @property
    def owner(self) -> int:
        return self.nodes[0]

    def __repr__(self) -> str:
        return f"PermittedPath[{self.path!r} rank={self.rank}]"


@dataclass(frozen=True)
class PolicyGraph:
    """The ranked permitted-path lattice for one destination.

    ``permitted`` maps each node to its permitted paths, best-first.  A
    node with no entry (or an empty tuple) has no permitted path to the
    destination under the configured policies.
    """

    destination: int
    prefix: str
    permitted: Mapping[int, Tuple[PermittedPath, ...]]
    complete: bool
    truncated_nodes: Tuple[int, ...] = ()

    @property
    def total_paths(self) -> int:
        return sum(len(paths) for paths in self.permitted.values())

    def paths_of(self, node: int) -> Tuple[PermittedPath, ...]:
        return self.permitted.get(node, ())

    def lookup(self, node: int, nodes: Tuple[int, ...]) -> Optional[PermittedPath]:
        """The entry for node-path ``nodes`` at ``node``, or ``None``."""
        for entry in self.permitted.get(node, ()):
            if entry.nodes == nodes:
                return entry
        return None


@dataclass(frozen=True)
class DisputeWheel:
    """A Griffin–Shepherd–Wilfong dispute wheel, as a checkable certificate.

    For every rim index ``i`` (cyclically): ``spokes[i]`` is rim node
    ``rim[i]``'s direct path to the destination, ``wheel_paths[i]`` its
    path *through* ``rim[i+1]`` whose suffix from ``rim[i+1]`` equals
    ``spokes[i+1]``, and ``rim[i]`` ranks the wheel path at least as high
    as its spoke (``wheel_ranks[i] <= spoke_ranks[i]`` in 0-is-best rank
    order).  The cyclic conflict means no assignment of spokes is stable:
    each rim node would rather ride the wheel.
    """

    rim: Tuple[int, ...]
    spokes: Tuple[AsPath, ...]
    wheel_paths: Tuple[AsPath, ...]
    spoke_ranks: Tuple[int, ...]
    wheel_ranks: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.rim)

    def rim_paths(self) -> Tuple[Tuple[int, ...], ...]:
        """The rim segments ``R_i``: ``rim[i] .. rim[i+1]`` inclusive."""
        segments: List[Tuple[int, ...]] = []
        for index, wheel_path in enumerate(self.wheel_paths):
            pivot = self.rim[(index + 1) % len(self.rim)]
            nodes = wheel_path.ases
            cut = nodes.index(pivot)
            segments.append(nodes[: cut + 1])
        return tuple(segments)

    def validate(self, graph: PolicyGraph) -> None:
        """Re-derive every wheel condition from ``graph``; raise on any lie.

        This makes the certificate self-checking: a test (or a skeptical
        operator) can confirm UNSAFE evidence without trusting the search.
        """
        size = len(self.rim)
        if size < 2:
            raise AnalysisError(f"dispute wheel needs >= 2 rim nodes: {self.rim}")
        if len(set(self.rim)) != size:
            raise AnalysisError(f"rim nodes must be distinct: {self.rim}")
        for index in range(size):
            node = self.rim[index]
            succ = self.rim[(index + 1) % size]
            spoke = graph.lookup(node, self.spokes[index].ases)
            wheel = graph.lookup(node, self.wheel_paths[index].ases)
            if spoke is None or wheel is None:
                raise AnalysisError(
                    f"wheel cites a path not permitted at node {node}"
                )
            if spoke.rank != self.spoke_ranks[index]:
                raise AnalysisError(f"spoke rank mismatch at node {node}")
            if wheel.rank != self.wheel_ranks[index]:
                raise AnalysisError(f"wheel-path rank mismatch at node {node}")
            if wheel.nodes == spoke.nodes:
                raise AnalysisError(
                    f"wheel path equals spoke at node {node}: {spoke.nodes}"
                )
            if not wheel.key <= spoke.key:
                raise AnalysisError(
                    f"node {node} does not prefer {wheel.nodes} over "
                    f"{spoke.nodes}"
                )
            suffix = self.wheel_paths[index].suffix_from(succ)
            if suffix is None or suffix.ases != self.spokes[(index + 1) % size].ases:
                raise AnalysisError(
                    f"wheel path at node {node} does not ride through "
                    f"{succ}'s spoke"
                )

    def to_json(self) -> dict:
        return {
            "rim": list(self.rim),
            "spokes": [list(path.ases) for path in self.spokes],
            "wheel_paths": [list(path.ases) for path in self.wheel_paths],
            "rim_paths": [list(segment) for segment in self.rim_paths()],
            "spoke_ranks": list(self.spoke_ranks),
            "wheel_ranks": list(self.wheel_ranks),
        }

    def render(self) -> str:
        lines = [f"dispute wheel, {self.size} rim nodes: {list(self.rim)}"]
        for index in range(self.size):
            lines.append(
                f"  node {self.rim[index]}: spoke {self.spokes[index]!r} "
                f"(rank {self.spoke_ranks[index]}) < wheel "
                f"{self.wheel_paths[index]!r} (rank {self.wheel_ranks[index]})"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class StabilityReport:
    """One scenario's static-stability verdict, plus its evidence."""

    name: str
    destination: int
    prefix: str
    verdict: Verdict
    method: str
    detail: str
    wheel: Optional[DisputeWheel] = None
    nodes: int = 0
    paths: int = 0
    complete: bool = True

    def to_json(self) -> dict:
        payload = {
            "name": self.name,
            "destination": self.destination,
            "prefix": self.prefix,
            "verdict": self.verdict.value,
            "method": self.method,
            "detail": self.detail,
            "nodes": self.nodes,
            "paths": self.paths,
            "complete": self.complete,
        }
        if self.wheel is not None:
            payload["wheel"] = self.wheel.to_json()
        return payload

    def render(self) -> str:
        lines = [
            f"{self.name}: {self.verdict.value.upper()} "
            f"[{self.method}] — {self.detail}"
        ]
        if self.wheel is not None:
            lines.extend("  " + line for line in self.wheel.render().splitlines())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Policy-graph extraction
# ----------------------------------------------------------------------


def _route_for(
    prefix: str, nodes: Tuple[int, ...], policy: RoutingPolicy
) -> Route:
    """The stored :class:`Route` corresponding to node-path ``nodes``.

    ``nodes[0]`` owns the route; the stored path is what its neighbor
    advertised — everything after the owner — with the policy's LOCAL_PREF
    hook applied, exactly as :meth:`BgpSpeaker._handle_announcement` would.
    """
    if len(nodes) == 1:
        return local_route(prefix)
    stored = AsPath.of(nodes[1:])
    provisional = Route(prefix=prefix, path=stored, next_hop=nodes[1])
    local_pref = policy.local_pref(nodes[1], provisional)
    if local_pref == provisional.local_pref:
        return provisional
    return Route(
        prefix=prefix, path=stored, next_hop=nodes[1], local_pref=local_pref
    )


def extract_policy_graph(
    topology: Topology,
    destination: int,
    policies: Mapping[int, RoutingPolicy],
    prefix: str = "dest",
    limits: SearchLimits = SearchLimits(),
) -> PolicyGraph:
    """Materialize the ranked permitted-path lattice for ``destination``.

    Propagation mirrors announcement flow: starting from the destination's
    local origination, a permitted path at ``u`` extends to neighbor ``v``
    when ``v`` is not already on it (path-based poison reverse), ``u``'s
    policy exports it to ``v``, and ``v``'s policy imports it.  Every
    permitted path is therefore built from a permitted path at its second
    node, so the lattice is closed under suffixes — the property the wheel
    search relies on.

    Purely static: policies are only *queried*; nothing is scheduled.
    """
    if not topology.has_node(destination):
        raise AnalysisError(f"destination {destination} not in topology")
    found: Dict[int, Dict[Tuple[int, ...], Route]] = {
        node: {} for node in topology.nodes
    }
    origin_path = (destination,)
    found[destination][origin_path] = local_route(prefix)
    frontier: List[Tuple[int, ...]] = [origin_path]
    complete = True
    truncated: List[int] = []
    total = 1
    while frontier:
        next_frontier: List[Tuple[int, ...]] = []
        for nodes in frontier:
            owner = nodes[0]
            route = found[owner][nodes]
            for neighbor in topology.neighbors(owner):
                if neighbor in nodes:
                    continue  # would loop; the receiver poison-reverses it
                if not policies[owner].accept_export(neighbor, route):
                    continue
                extended = (neighbor,) + nodes
                if extended in found[neighbor]:
                    continue
                imported = _route_for(prefix, extended, policies[neighbor])
                if not policies[neighbor].accept_import(owner, imported):
                    continue
                if (
                    len(found[neighbor]) >= limits.max_paths_per_node
                    or total >= limits.max_paths_total
                ):
                    complete = False
                    if neighbor not in truncated:
                        truncated.append(neighbor)
                    continue
                found[neighbor][extended] = imported
                total += 1
                next_frontier.append(extended)
        frontier = sorted(next_frontier)
    permitted: Dict[int, Tuple[PermittedPath, ...]] = {}
    for node in topology.nodes:
        entries = found[node]
        ranked = sorted(
            entries.items(),
            key=lambda item: (policies[item[0][0]].preference_key(item[1]), item[0]),
        )
        permitted[node] = tuple(
            PermittedPath(
                nodes=nodes,
                path=AsPath.of(nodes),
                key=tuple(policies[node].preference_key(route)),
                rank=rank,
            )
            for rank, (nodes, route) in enumerate(ranked)
        )
    return PolicyGraph(
        destination=destination,
        prefix=prefix,
        permitted=permitted,
        complete=complete,
        truncated_nodes=tuple(sorted(truncated)),
    )


# ----------------------------------------------------------------------
# Dispute-wheel search
# ----------------------------------------------------------------------


@dataclass
class _WheelSearch:
    """Bounded DFS over (rim node, spoke) states for a distinct-node cycle."""

    graph: PolicyGraph
    limits: SearchLimits
    steps: int = 0
    exhausted: bool = field(default=False)

    def arcs_from(
        self, node: int, spoke: PermittedPath
    ) -> List[Tuple[int, Tuple[int, ...], PermittedPath]]:
        """All rim arcs out of state ``(node, spoke)``.

        An arc rides a permitted path ``P != spoke`` ranked at least as
        high as the spoke, pivoting at any intermediate node ``w`` whose
        suffix of ``P`` becomes ``w``'s spoke — yielding
        ``(w, suffix_nodes, wheel_path_entry)``.
        """
        arcs: List[Tuple[int, Tuple[int, ...], PermittedPath]] = []
        for candidate in self.graph.paths_of(node):
            if candidate.nodes == spoke.nodes:
                continue
            if not candidate.key <= spoke.key:
                continue
            # Pivot at every intermediate node (never the owner or the
            # destination — the destination has no non-trivial spoke).
            for cut in range(1, len(candidate.nodes) - 1):
                pivot = candidate.nodes[cut]
                arcs.append((pivot, candidate.nodes[cut:], candidate))
        return arcs

    def find(self) -> Optional[DisputeWheel]:
        states: List[Tuple[int, PermittedPath]] = []
        for node in sorted(self.graph.permitted):
            for entry in self.graph.paths_of(node):
                states.append((node, entry))
        for start_node, start_spoke in states:
            wheel = self._dfs(start_node, start_spoke)
            if wheel is not None:
                return wheel
            if self.exhausted:
                return None
        return None

    def _dfs(
        self, start_node: int, start_spoke: PermittedPath
    ) -> Optional[DisputeWheel]:
        # Stack frames: (node, spoke, arc iterator); trail holds the wheel
        # path chosen to *enter* each frame after the first.
        frames = [(start_node, start_spoke, iter(self.arcs_from(start_node, start_spoke)))]
        trail: List[PermittedPath] = []
        on_rim = {start_node}
        while frames:
            node, spoke, arc_iter = frames[-1]
            self.steps += 1
            if self.steps > self.limits.max_search_steps:
                self.exhausted = True
                return None
            advanced = False
            for pivot, suffix_nodes, wheel_path in arc_iter:
                if pivot == start_node and suffix_nodes == start_spoke.nodes:
                    # Cycle closed: frames + this arc are the wheel.
                    rim = tuple(frame[0] for frame in frames)
                    spokes = tuple(frame[1] for frame in frames)
                    wheels = tuple(trail) + (wheel_path,)
                    return DisputeWheel(
                        rim=rim,
                        spokes=tuple(entry.path for entry in spokes),
                        wheel_paths=tuple(entry.path for entry in wheels),
                        spoke_ranks=tuple(entry.rank for entry in spokes),
                        wheel_ranks=tuple(entry.rank for entry in wheels),
                    )
                if pivot in on_rim:
                    continue
                suffix_entry = self.graph.lookup(pivot, suffix_nodes)
                if suffix_entry is None:  # pragma: no cover - lattice is
                    continue  # suffix-closed by construction
                on_rim.add(pivot)
                trail.append(wheel_path)
                frames.append(
                    (pivot, suffix_entry, iter(self.arcs_from(pivot, suffix_entry)))
                )
                advanced = True
                break
            if not advanced:
                frames.pop()
                if frames:
                    on_rim.discard(node)
                    trail.pop()
        return None


def find_dispute_wheel(
    graph: PolicyGraph, limits: SearchLimits = SearchLimits()
) -> Optional[DisputeWheel]:
    """Search ``graph`` for a dispute wheel; ``None`` when none was found.

    The returned wheel always satisfies :meth:`DisputeWheel.validate`.
    A ``None`` with complete enumeration and an un-exhausted step budget
    is a *proof* of no-wheel (and hence safety); callers needing to
    distinguish "proved absent" from "gave up" should use :func:`certify`.
    """
    wheel = _WheelSearch(graph=graph, limits=limits).find()
    if wheel is not None:
        wheel.validate(graph)
    return wheel


# ----------------------------------------------------------------------
# Structural short-cuts
# ----------------------------------------------------------------------


def _all_shortest_path(policies: Mapping[int, RoutingPolicy]) -> bool:
    """True when every node runs the paper's default policy, *exactly*.

    Subclasses are deliberately excluded: an override of any hook voids
    the shortest-path safety argument, so only the pristine classes count.
    """
    return all(
        type(policy) in (RoutingPolicy, ShortestPathPolicy)
        for policy in policies.values()
    )


def _gao_rexford_issue(
    topology: Topology, policies: Mapping[int, RoutingPolicy]
) -> Optional[str]:
    """Why the Gao-Rexford structural safety argument does NOT apply.

    Returns ``None`` when it does: every node runs
    :class:`GaoRexfordPolicy`, every edge has a pairwise-consistent
    relationship (customer↔provider or peer↔peer), and the
    provider→customer digraph is acyclic.  Under those conditions Gao &
    Rexford's theorem guarantees convergence regardless of timing.
    """
    if not all(
        isinstance(policy, GaoRexfordPolicy) for policy in policies.values()
    ):
        return "not all policies are Gao-Rexford"
    customer_edges: Dict[int, List[int]] = {node: [] for node in topology.nodes}
    for u, v, _delay in topology.edges():
        try:
            seen_by_u = policies[u].relationship(v)  # type: ignore[union-attr]
            seen_by_v = policies[v].relationship(u)  # type: ignore[union-attr]
        except ProtocolError as exc:
            return f"relationship map incomplete: {exc}"
        consistent = (
            (seen_by_u is Relationship.CUSTOMER and seen_by_v is Relationship.PROVIDER)
            or (seen_by_u is Relationship.PROVIDER and seen_by_v is Relationship.CUSTOMER)
            or (seen_by_u is Relationship.PEER and seen_by_v is Relationship.PEER)
        )
        if not consistent:
            return (
                f"edge ({u}, {v}) relationships disagree: "
                f"{seen_by_u.value} vs {seen_by_v.value}"
            )
        if seen_by_u is Relationship.CUSTOMER:
            customer_edges[u].append(v)
        elif seen_by_v is Relationship.CUSTOMER:
            customer_edges[v].append(u)
    # Provider→customer digraph must be a DAG ("no AS is its own indirect
    # customer"); a cycle voids the Gao-Rexford convergence argument.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in topology.nodes}
    for root in topology.nodes:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, index = stack[-1]
            children = sorted(customer_edges[node])
            if index < len(children):
                stack[-1] = (node, index + 1)
                child = children[index]
                if color[child] == GRAY:
                    return (
                        f"provider→customer cycle through AS {child}: the "
                        f"hierarchy is not a DAG"
                    )
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return None


# ----------------------------------------------------------------------
# The certifier
# ----------------------------------------------------------------------


def certify(
    topology: Topology,
    destination: int,
    policy_factory: Optional[PolicyFactory] = None,
    prefix: str = "dest",
    name: str = "",
    limits: SearchLimits = SearchLimits(),
    structural: bool = True,
    registry: Optional["MetricsRegistry"] = None,
) -> StabilityReport:
    """Prove or refute convergence for one destination, statically.

    Tries the structural certificates first (``structural=False`` forces
    the exhaustive lattice route, mainly for tests), then falls back to
    policy-graph extraction plus dispute-wheel search.  ``registry``, when
    given, receives the ``stability.*`` telemetry counters.
    """
    policies: Dict[int, RoutingPolicy] = {}
    default = ShortestPathPolicy()
    for node in topology.nodes:
        policies[node] = policy_factory(node) if policy_factory else default
    label = name or f"dest-{destination}@{topology.name}"

    report: Optional[StabilityReport] = None
    if structural:
        if _all_shortest_path(policies):
            report = StabilityReport(
                name=label,
                destination=destination,
                prefix=prefix,
                verdict=Verdict.SAFE,
                method="shortest-path",
                detail=(
                    "every policy is pure shortest-path; rim edges of any "
                    "wheel would need non-positive total length"
                ),
                nodes=topology.num_nodes,
            )
        else:
            gao_issue = _gao_rexford_issue(topology, policies)
            if (
                all(isinstance(p, GaoRexfordPolicy) for p in policies.values())
                and gao_issue is None
            ):
                report = StabilityReport(
                    name=label,
                    destination=destination,
                    prefix=prefix,
                    verdict=Verdict.SAFE,
                    method="gao-rexford",
                    detail=(
                        "valley-free export, customer>peer>provider "
                        "preference, and an acyclic provider-customer "
                        "hierarchy (Gao-Rexford conditions)"
                    ),
                    nodes=topology.num_nodes,
                )

    if report is None:
        graph = extract_policy_graph(
            topology, destination, policies, prefix=prefix, limits=limits
        )
        search = _WheelSearch(graph=graph, limits=limits)
        wheel = search.find()
        if wheel is not None:
            wheel.validate(graph)
            report = StabilityReport(
                name=label,
                destination=destination,
                prefix=prefix,
                verdict=Verdict.UNSAFE,
                method="dispute-wheel",
                detail=(
                    f"dispute wheel with rim {list(wheel.rim)}: the cyclic "
                    f"preference conflict admits persistent oscillation"
                ),
                wheel=wheel,
                nodes=topology.num_nodes,
                paths=graph.total_paths,
                complete=graph.complete,
            )
        elif not graph.complete:
            report = StabilityReport(
                name=label,
                destination=destination,
                prefix=prefix,
                verdict=Verdict.UNKNOWN,
                method="truncated-lattice",
                detail=(
                    f"path enumeration truncated at nodes "
                    f"{list(graph.truncated_nodes)} "
                    f"(> {limits.max_paths_per_node}/node or "
                    f"> {limits.max_paths_total} total); no wheel found in "
                    f"the enumerated fragment"
                ),
                nodes=topology.num_nodes,
                paths=graph.total_paths,
                complete=False,
            )
        elif search.exhausted:
            # A None with a blown step budget is "gave up", not "proved".
            report = StabilityReport(
                name=label,
                destination=destination,
                prefix=prefix,
                verdict=Verdict.UNKNOWN,
                method="search-budget",
                detail=(
                    f"wheel search exceeded {limits.max_search_steps} "
                    f"steps without completing"
                ),
                nodes=topology.num_nodes,
                paths=graph.total_paths,
            )
        else:
            report = StabilityReport(
                name=label,
                destination=destination,
                prefix=prefix,
                verdict=Verdict.SAFE,
                method="no-dispute-wheel",
                detail=(
                    f"exhaustive search over {graph.total_paths} "
                    f"permitted paths found no dispute wheel "
                    f"(Griffin-Shepherd-Wilfong sufficiency)"
                ),
                nodes=topology.num_nodes,
                paths=graph.total_paths,
            )
    _count(registry, report)
    return report


def certify_scenario(
    scenario: "Scenario",
    policy_factory: Optional[PolicyFactory] = None,
    limits: SearchLimits = SearchLimits(),
    structural: bool = True,
    registry: Optional["MetricsRegistry"] = None,
) -> StabilityReport:
    """:func:`certify` for an experiment scenario (pre-event topology).

    Certification looks at the scenario's *intended* topology: the verdict
    bounds behavior before, during, and after the event, because removing
    links only removes permitted paths and a sub-lattice of a wheel-free
    lattice is wheel-free.  (The converse is not true — a wheel may survive
    or vanish under failure — which is why UNSAFE verdicts are
    cross-checked dynamically by the oscillation runner.)
    """
    return certify(
        scenario.topology,
        scenario.destination,
        policy_factory,
        prefix=scenario.prefix,
        name=scenario.name,
        limits=limits,
        structural=structural,
        registry=registry,
    )


def _count(registry: Optional["MetricsRegistry"], report: StabilityReport) -> None:
    if registry is None:
        return
    registry.counter("stability.scenarios_analyzed").inc()
    if report.verdict is Verdict.SAFE:
        registry.counter("stability.certified_safe").inc()
    elif report.verdict is Verdict.UNSAFE:
        registry.counter("stability.certified_unsafe").inc()
    else:
        registry.counter("stability.unknown").inc()
    if report.wheel is not None:
        registry.counter("stability.wheels_found").inc()
