"""Simulation correctness tooling.

Two prongs guard the repository's reproducibility contract:

* :mod:`repro.analysis.lint` — a static AST pass with
  simulation-specific determinism rules (no wall clock, no unseeded
  randomness, no unordered iteration on emission paths, no mutable
  defaults, no float timestamp equality), run as ``python -m repro
  lint`` and in CI;
* :mod:`repro.analysis.sanitizers` — opt-in runtime invariant checkers
  (causality, per-channel FIFO, RIB coherence) wired into the engine,
  net, and BGP layers through a lightweight invariant-hook API; plus
  :mod:`repro.analysis.determinism`, the dual-run harness that proves a
  scenario bit-for-bit reproducible under a fixed seed.

A third prong reasons about *protocol* correctness rather than simulator
correctness: :mod:`repro.analysis.stability` decides statically — via
dispute-wheel search and Gao-Rexford structural checks — whether a
scenario's policies can oscillate forever, before a single event is
scheduled.
"""

from .determinism import (
    DeterminismReport,
    RunFingerprint,
    check_determinism,
    fingerprint_run,
)
from .lint import RULES, LintViolation, lint_paths, lint_source
from .sanitizers import (
    SANITIZER_NAMES,
    CausalitySanitizer,
    FifoSanitizer,
    InvariantHooks,
    RibCoherenceSanitizer,
    SanitizerSuite,
    build_suite,
)
from .stability import (
    DisputeWheel,
    PermittedPath,
    PolicyGraph,
    SearchLimits,
    StabilityReport,
    Verdict,
    certify,
    certify_scenario,
    extract_policy_graph,
    find_dispute_wheel,
)

__all__ = [
    "CausalitySanitizer",
    "DeterminismReport",
    "DisputeWheel",
    "FifoSanitizer",
    "InvariantHooks",
    "LintViolation",
    "PermittedPath",
    "PolicyGraph",
    "RULES",
    "RibCoherenceSanitizer",
    "RunFingerprint",
    "SANITIZER_NAMES",
    "SanitizerSuite",
    "SearchLimits",
    "StabilityReport",
    "Verdict",
    "build_suite",
    "certify",
    "certify_scenario",
    "check_determinism",
    "extract_policy_graph",
    "find_dispute_wheel",
    "fingerprint_run",
    "lint_paths",
    "lint_source",
]
