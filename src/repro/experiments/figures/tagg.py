"""Tagg: traffic-weighted looping under prefix aggregation events.

Not a figure from the paper — the paper's experiments are single-prefix —
but the natural multi-prefix extension of its methodology: sweep the size
of a prefix population over a fixed clique, drive every origin through an
aggregate/deaggregate cycle (:class:`~repro.bgp.aggregation.AggregateBlock`),
and measure the *traffic-weighted* looping ratio — the fraction of offered
traffic (a seeded CBR matrix per (source, prefix)) that loops or blackholes
per epoch under longest-prefix-match forwarding.

The per-prefix metrics (``looping_ratio`` etc.) still describe the focus
prefix, so the figure shows both: how the legacy single-prefix view relates
to the table-wide traffic view as the population grows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import RunSettings
from ..report import FigureData
from ..resilience import ResiliencePolicy
from ..scenarios import clique_tagg_trial
from ..spec import factory_ref
from .common import metric_sweep_figure

_METRICS = (
    "traffic_looped_fraction",
    "traffic_blackholed_fraction",
    "looping_ratio",
)


def figure_tagg(
    prefix_counts: Sequence[int] = (16, 64, 256),
    clique_size: int = 6,
    origins: int = 2,
    hold: float = 30.0,
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: Optional[RunSettings] = None,
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Traffic-weighted loop metrics vs prefix-population size (Tagg).

    ``settings`` defaults to :class:`RunSettings` with ``traffic_matrix``
    forced on — the traffic series cannot be measured without it, so a
    caller-supplied settings object is rebuilt with the flag set.
    """
    base = settings or RunSettings()
    if not base.traffic_matrix:
        from dataclasses import replace

        base = replace(base, traffic_matrix=True)
    figure, _points = metric_sweep_figure(
        "tagg",
        "Traffic-weighted looping vs prefix population (Tagg, clique)",
        "prefix_count",
        [int(x) for x in prefix_counts],
        factory_ref(
            clique_tagg_trial, size=clique_size, origins=origins, hold=hold
        ),
        _METRICS,
        mrai=mrai,
        seeds=seeds,
        settings=base,
        jobs=jobs,
        policy=policy,
    )
    return figure
