"""Event-driven per-packet forwarding.

The exact (and expensive) counterpart of the epoch evaluator: every packet is
simulated hop by hop *during* the routing simulation, consulting each node's
live FIB at the moment the packet arrives there.  Unlike the epoch evaluator
it makes no quasi-static assumption — a packet in flight experiences FIB
changes — so it serves as ground truth in tests and in the ablation study
(``benchmarks/bench_ablation.py``).

Use it for small scenarios; for the paper-scale sweeps prefer
:class:`~repro.dataplane.epochs.EpochEvaluator`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..engine import EventPriority, Scheduler
from ..errors import AnalysisError
from ..topology import Topology
from .epochs import DataPlaneReport
from .packet import DEFAULT_TTL
from .traffic import CbrSource

FibLookup = Callable[[int], Optional[int]]
"""``lookup(node) -> next_hop`` against *live* state (None = no route,
node itself = local delivery)."""


class PacketForwarder:
    """Schedules real packet events inside the running simulation.

    Parameters
    ----------
    scheduler:
        The simulation's scheduler (shared with the routing protocol).
    topology:
        Supplies per-link propagation delays.
    fib_lookup:
        Live FIB accessor, typically closing over the network's speakers.
    ttl:
        Initial TTL per packet.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        topology: Topology,
        fib_lookup: FibLookup,
        ttl: int = DEFAULT_TTL,
    ) -> None:
        self._scheduler = scheduler
        self._topology = topology
        self._fib_lookup = fib_lookup
        self._ttl = ttl
        self._report: Optional[DataPlaneReport] = None

    # ------------------------------------------------------------------

    def launch(self, sources: List[CbrSource], start: float, end: float) -> None:
        """Schedule every packet each source emits in ``[start, end)``.

        Must be called before the scheduler runs past ``start``.  The number
        of events is proportional to packets × hops; keep windows modest.
        """
        if end <= start:
            raise AnalysisError(f"traffic window [{start}, {end}) is empty")
        if self._report is not None:
            raise AnalysisError("launch() may only be called once per forwarder")
        self._report = DataPlaneReport(window=(start, end))
        for source in sources:
            for departure in source.times_in(start, end):
                self._report.packets_sent += 1
                self._scheduler.call_at(
                    departure,
                    lambda node=source.node: self._arrive(node, node, self._ttl),
                    priority=EventPriority.MONITOR,
                    name=f"packet:{source.node}",
                )

    @property
    def report(self) -> DataPlaneReport:
        """Packet fates accumulated so far (valid after the run)."""
        if self._report is None:
            raise AnalysisError("no traffic launched yet")
        return self._report

    # ------------------------------------------------------------------

    def _arrive(self, source: int, node: int, ttl_remaining: int) -> None:
        """The packet from ``source`` is at ``node`` with TTL left."""
        assert self._report is not None
        next_hop = self._fib_lookup(node)
        if next_hop == node:
            self._report.record_delivery(self._ttl - ttl_remaining)
            return
        if next_hop is None or not self._topology.has_edge(node, next_hop):
            self._report.dropped_no_route += 1
            return
        if ttl_remaining == 0:
            self._report.ttl_exhaustions += 1
            self._report.per_source_exhaustions[source] = (
                self._report.per_source_exhaustions.get(source, 0) + 1
            )
            self._report._note_exhaustion(self._scheduler.now)
            return
        delay = self._topology.link_delay(node, next_hop)
        self._scheduler.call_at(
            self._scheduler.now + delay,
            lambda: self._arrive(source, next_hop, ttl_remaining - 1),
            priority=EventPriority.MONITOR,
            name="packet-hop",
        )
