"""Batched UPDATEs and the per-peer MRAI mode.

Two multi-prefix mechanisms ride together: ``BgpConfig.batch_updates``
packs every same-instant route change toward a peer into one
:class:`~repro.bgp.messages.UpdateBatch` (canonical wire form — sorted,
duplicate-free NLRI + withdrawn lists), and ``mrai_mode="per-peer"``
shares one MRAI timer across the whole table toward each neighbor.
Both must leave protocol outcomes intact: batching changes packing,
never timing, and a full Tdown run converges to the same FIB state with
either knob flipped.
"""

import pickle
import random

import pytest

from repro.bgp import AsPath, BgpConfig, MraiManager, UpdateBatch
from repro.bgp.mrai import MRAI_PER_PEER, MRAI_PER_PREFIX
from repro.bgp.path import intern_path
from repro.errors import ConfigError
from repro.experiments import RunSettings
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import tagg_clique, tdown_clique


def batch(**kwargs):
    return UpdateBatch(**kwargs)


class TestUpdateBatchValidation:
    def test_round_trip_fields(self):
        b = batch(
            withdrawn=("a", "b"),
            nlri=(("c", AsPath.of((3, 1))), ("d", AsPath.of((3, 2)))),
        )
        assert b.withdrawn == ("a", "b")
        assert b.size == 4
        assert b.sender == 3
        assert "Batch[" in repr(b)

    def test_pure_withdrawal_has_no_sender(self):
        b = batch(withdrawn=("a",))
        with pytest.raises(ValueError):
            b.sender

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            batch()

    def test_unsorted_withdrawn_rejected(self):
        with pytest.raises(ValueError):
            batch(withdrawn=("b", "a"))

    def test_duplicate_nlri_rejected(self):
        path = AsPath.of((1,))
        with pytest.raises(ValueError):
            batch(nlri=(("a", path), ("a", path)))

    def test_prefix_in_both_lists_rejected(self):
        with pytest.raises(ValueError):
            batch(withdrawn=("a",), nlri=(("a", AsPath.of((1,))),))

    def test_mixed_path_heads_rejected(self):
        with pytest.raises(ValueError):
            batch(nlri=(("a", AsPath.of((1,))), ("b", AsPath.of((2,)))))

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            batch(nlri=(("a", AsPath.of(())),))

    def test_pickle_round_trip_preserves_interning(self):
        b = batch(
            withdrawn=("w",),
            nlri=(("a", AsPath.of((5, 2, 1))), ("b", AsPath.of((5, 9)))),
        )
        clone = pickle.loads(pickle.dumps(b))
        assert clone == b
        for (_prefix, path), (_cp, cpath) in zip(b.nlri, clone.nlri):
            assert cpath is intern_path(path.ases)


class TestBgpConfigKnobs:
    def test_defaults_are_legacy(self):
        config = BgpConfig()
        assert config.mrai_mode == MRAI_PER_PREFIX
        assert config.batch_updates is False

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            BgpConfig(mrai_mode="per-table")


def make_per_peer(scheduler, expiries, interval=10.0):
    return MraiManager(
        scheduler,
        interval=interval,
        jitter=(1.0, 1.0),
        rng=random.Random(0),
        on_expiry=lambda peer, prefix: expiries.append(
            (scheduler.now, peer, prefix)
        ),
        mode=MRAI_PER_PEER,
    )


class TestPerPeerMrai:
    def test_timer_shared_across_prefixes(self, scheduler):
        expiries = []
        mrai = make_per_peer(scheduler, expiries)
        mrai.mark_sent(1, "d")
        assert not mrai.can_send_now(1, "e")  # other prefix, same timer
        assert mrai.can_send_now(2, "d")      # other peer unaffected
        scheduler.run()
        assert expiries == [(10.0, 1, None)]  # per-peer expiry, no prefix

    def test_flush_window_sends_freely_rearms_once(self, scheduler):
        expiries = []
        mrai = make_per_peer(scheduler, expiries)
        with mrai.flush_window(1):
            assert mrai.can_send_now(1, "a")
            mrai.mark_sent(1, "a")
            assert mrai.can_send_now(1, "b")  # still open inside window
            mrai.mark_sent(1, "b")
        assert not mrai.can_send_now(1, "a")  # armed once at exit
        assert mrai.active_timers() == 1
        scheduler.run()
        assert expiries == [(10.0, 1, None)]

    def test_empty_flush_window_leaves_peer_unthrottled(self, scheduler):
        expiries = []
        mrai = make_per_peer(scheduler, expiries)
        with mrai.flush_window(1):
            pass
        assert mrai.can_send_now(1, "a")
        assert mrai.active_timers() == 0

    def test_flush_window_noop_in_per_prefix_mode(self, scheduler):
        expiries = []
        mrai = MraiManager(
            scheduler,
            interval=10.0,
            jitter=(1.0, 1.0),
            rng=random.Random(0),
            on_expiry=lambda peer, prefix: expiries.append((peer, prefix)),
        )
        with mrai.flush_window(1):
            mrai.mark_sent(1, "a")
            # Per-prefix mode: the send arms its own pair timer immediately.
            assert not mrai.can_send_now(1, "a")
            assert mrai.can_send_now(1, "b")

    def test_cancel_peer_clears_flush_state(self, scheduler):
        expiries = []
        mrai = make_per_peer(scheduler, expiries)
        with mrai.flush_window(1):
            mrai.mark_sent(1, "a")
            mrai.cancel_peer(1)
        # The cancelled peer must not have been re-armed at window exit.
        assert mrai.can_send_now(1, "a")
        scheduler.run()
        assert expiries == []


FAST = dict(mrai=2.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(failure_guard=0.5)


def final_fib(run):
    """{(node, prefix): next_hop} at end of run, from the FIB change log."""
    state = {}
    for change in run.fib_log:
        state[(change.node, change.prefix)] = change.next_hop
    return state


class TestBatchedRunEquivalence:
    """Batching and MRAI mode change packing/pacing, not the fixed point."""

    @pytest.fixture(scope="class")
    def runs(self):
        scenario = tdown_clique(5)
        variants = {
            "plain": BgpConfig(**FAST),
            "batched": BgpConfig(batch_updates=True, **FAST),
            "per_peer": BgpConfig(
                mrai_mode=MRAI_PER_PEER, batch_updates=True, **FAST
            ),
        }
        return {
            name: run_experiment(
                scenario, config, SETTINGS, seed=0, keep_network=True
            )
            for name, config in variants.items()
        }

    def test_all_converge(self, runs):
        for run in runs.values():
            assert run.converged

    def test_same_final_fib_state(self, runs):
        states = {name: final_fib(run) for name, run in runs.items()}
        assert states["plain"] == states["batched"] == states["per_peer"]

    def test_batched_run_sends_batches(self, runs):
        network = runs["batched"].network
        total = sum(
            network.nodes[n].batches_sent for n in network.nodes
        )
        assert total > 0

    def test_multiprefix_batches_pack_many_prefixes(self):
        run = run_experiment(
            tagg_clique(4, prefixes=8, origins=2, hold=5.0),
            BgpConfig(batch_updates=True, mrai_mode=MRAI_PER_PEER, **FAST),
            SETTINGS,
            seed=0,
            keep_network=True,
        )
        assert run.converged
        sizes = [
            record.message.size
            for record in run.network.trace
            if isinstance(record.message, UpdateBatch)
        ]
        assert sizes and max(sizes) > 1  # at least one genuinely multi-prefix

    def test_invariants_hold_after_batched_churn(self):
        run = run_experiment(
            tagg_clique(4, prefixes=8, origins=2, hold=5.0),
            BgpConfig(batch_updates=True, **FAST),
            RunSettings(failure_guard=0.5, sanitize=True),
            seed=1,
            keep_network=True,
        )
        assert run.converged
        for node_id in sorted(run.network.nodes):
            run.network.nodes[node_id].check_invariants()
