"""Cross-validation: epoch evaluator vs event-driven packet forwarder.

The epoch evaluator is exact under the quasi-static assumption (forwarding
graphs change slowly relative to a packet's flight time).  Here both engines
measure the *same* simulation over the same fixed window and must agree on
packet counts — with a small tolerance for packets that were mid-flight
while the routing state changed, which only the event-driven engine sees.
"""

import pytest

from repro.bgp import BgpConfig
from repro.dataplane import EpochEvaluator, PacketForwarder, sources_for
from repro.experiments import RunSettings, run_experiment, tdown_clique, tlong_bclique

WINDOW = 25.0  # fixed measurement window after the failure
TTL = 32
RATE = 20.0


def cross_validate(scenario, seed):
    config = BgpConfig(mrai=2.0, processing_delay=(0.1, 0.3))
    settings = RunSettings(packet_rate=RATE, ttl=TTL, failure_guard=0.5)
    captured = {}

    def attach_forwarder(network, failure_time):
        sources = sources_for(
            scenario.topology.nodes, scenario.destination, rate=RATE
        )
        forwarder = PacketForwarder(
            network.scheduler,
            scenario.topology,
            lambda node: network.nodes[node].fib.get(scenario.prefix),
            ttl=TTL,
        )
        forwarder.launch(sources, failure_time, failure_time + WINDOW)
        captured["forwarder"] = forwarder
        captured["sources"] = sources
        captured["failure_time"] = failure_time

    run = run_experiment(
        scenario,
        config,
        settings=settings,
        seed=seed,
        on_network_ready=attach_forwarder,
    )
    start = captured["failure_time"]
    epoch_report = EpochEvaluator(
        run.fib_log, scenario.prefix, captured["sources"], ttl=TTL
    ).evaluate(start, start + WINDOW)
    return epoch_report, captured["forwarder"].report


@pytest.mark.parametrize("seed", [0, 1])
def test_clique_tdown_agreement(seed):
    epoch, exact = cross_validate(tdown_clique(5), seed)
    assert epoch.packets_sent == exact.packets_sent
    tolerance = max(3, int(0.02 * epoch.packets_sent))
    assert abs(epoch.ttl_exhaustions - exact.ttl_exhaustions) <= tolerance
    assert abs(epoch.delivered - exact.delivered) <= tolerance
    assert abs(epoch.dropped_no_route - exact.dropped_no_route) <= tolerance


def test_bclique_tlong_agreement():
    epoch, exact = cross_validate(tlong_bclique(4), seed=2)
    assert epoch.packets_sent == exact.packets_sent
    tolerance = max(3, int(0.02 * epoch.packets_sent))
    assert abs(epoch.ttl_exhaustions - exact.ttl_exhaustions) <= tolerance
    assert abs(epoch.delivered - exact.delivered) <= tolerance


def test_stable_network_full_agreement():
    """With no failure in the window the two engines must agree exactly."""
    from repro.engine import RandomStreams, Scheduler
    from repro.net import Network
    from repro.bgp import BgpSpeaker
    from repro.dataplane import FibChangeLog
    from repro.topology import clique

    scheduler = Scheduler()
    streams = RandomStreams(3)
    log = FibChangeLog()
    config = BgpConfig(mrai=2.0, processing_delay=(0.01, 0.05))
    network = Network(
        clique(4),
        scheduler,
        lambda nid, sch: BgpSpeaker(
            nid, sch, config=config, streams=streams, fib_listener=log.record
        ),
    )
    network.node(0).originate("dest")
    network.start()
    scheduler.run(max_events=100_000)

    start = scheduler.now
    sources = sources_for([0, 1, 2, 3], 0, rate=RATE)
    forwarder = PacketForwarder(
        scheduler, clique(4), lambda n: network.nodes[n].fib.get("dest"), ttl=TTL
    )
    forwarder.launch(sources, start, start + 5.0)
    scheduler.run()

    epoch = EpochEvaluator(log, "dest", sources, ttl=TTL).evaluate(start, start + 5.0)
    assert epoch.packets_sent == forwarder.report.packets_sent
    assert epoch.delivered == forwarder.report.delivered == epoch.packets_sent
    assert epoch.ttl_exhaustions == forwarder.report.ttl_exhaustions == 0
