"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.bgp import BgpConfig, BgpSpeaker
from repro.dataplane import FibChangeLog
from repro.engine import RandomStreams, Scheduler
from repro.net import Network


@pytest.fixture
def scheduler() -> Scheduler:
    return Scheduler()


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(seed=12345)


@pytest.fixture
def fast_config() -> BgpConfig:
    """A BGP config with small timers so tests run fast in simulated time.

    Zero-width processing delay keeps behavior deterministic per seed while
    still exercising the serialized-processing code path.
    """
    return BgpConfig(mrai=2.0, processing_delay=(0.01, 0.05))


@pytest.fixture
def bgp_network_factory(scheduler):
    """Factory: build a Network of BgpSpeakers over a topology.

    Returns ``(network, fib_log)``; the destination is NOT originated —
    tests do that explicitly so they control the timeline.
    """

    def build(topology, config=None, seed=7, policy=None):
        config = config or BgpConfig(mrai=2.0, processing_delay=(0.01, 0.05))
        streams = RandomStreams(seed)
        fib_log = FibChangeLog()

        def factory(node_id, sched):
            return BgpSpeaker(
                node_id,
                sched,
                config=config,
                streams=streams,
                policy=policy,
                fib_listener=fib_log.record,
            )

        network = Network(topology, scheduler, factory)
        return network, fib_log

    return build


def run_to_quiescence(scheduler: Scheduler, max_events: int = 500_000) -> float:
    """Convenience wrapper used across protocol tests."""
    return scheduler.run(max_events=max_events)


@pytest.fixture
def quiesce():
    return run_to_quiescence
