"""Resilient sweep execution: supervision, timeouts, and retry with backoff.

The parallel sweep executor (PR 3) assumed a well-behaved pool: a worker
OOM-killed mid-trial raised ``BrokenProcessPool`` out of the whole sweep
and discarded every completed trial, and a hung trial held its worker
forever.  Fleet-scale runs (the ROADMAP's always-on sweep service,
Internet-scale trials) make those events routine, so this module replaces
the anonymous pool with a *supervised* executor:

* **one worker process per in-flight trial**, connected by its own pipe,
  so the supervisor always knows exactly which PID runs which
  :class:`~repro.experiments.sweep.TrialTask`;
* **worker death** (killed PID, crash, nonzero exit) loses only that one
  in-flight trial — the supervisor spawns a replacement and re-submits
  the identical task, never the finished ones;
* **per-trial wall-clock timeouts**: a harness-side watchdog kills the
  worker of any trial that exceeds ``policy.trial_timeout`` and converts
  the hang into a :class:`~repro.errors.TrialTimeoutError`;
* **retry with capped exponential backoff** and *deterministic seeded
  jitter* for the transient failure kinds (death, timeout).  A retry
  re-runs the identical ``TrialTask`` in a fresh process, so a retried
  trial's digest is bit-identical to an undisturbed run — resilience
  never perturbs ``digests=True`` equivalence.

Retry/timeout/restart counts are accumulated in a
:class:`~repro.telemetry.registry.MetricsRegistry` and surfaced as a
:class:`SupervisionReport`, returned by :func:`run_tasks_supervised` and
threaded to callers through ``sweep(..., on_report=...)`` — one report
per supervised sweep, owned by that sweep's caller, so a daemon running
many concurrent sweeps never sees another job's counters.  (The older
process-wide :func:`last_report` accessor survives as a deprecated
shim.)

Determinism boundary: this file is harness-side supervision *about* the
simulation, never inside it — like :mod:`repro.telemetry.profiler` it is
a sanctioned REP101 wall-clock exemption (see ``RULE_EXEMPT_SUFFIXES``
in :mod:`repro.analysis.lint`).  Nothing under engine/net/bgp/dataplane
may import it.  The only randomness is the backoff jitter, drawn from a
``random.Random`` seeded purely by ``(task.index, task.seed, attempt)``
— reproducible by construction and invisible to simulation results.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import random
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    AnalysisError,
    ConfigError,
    TrialTimeoutError,
    WorkerCrashError,
)
from ..telemetry.registry import MetricsRegistry, MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotation only)
    from .sweep import ProgressCallback, TrialTask

#: Supervisor poll tick (seconds): the upper bound on how stale the
#: watchdog's view of worker liveness/deadlines can be.
_TICK = 0.05

#: Exit code a worker reports when it finished its trial and shipped the
#: outcome; anything else (or a signal death) is a worker crash.
_CLEAN_EXIT = 0


@dataclass(frozen=True)
class ResiliencePolicy:
    """How a sweep survives worker death, hangs, and transient failures.

    ``max_retries``
        Extra attempts granted to a trial after a *transient* failure
        (worker death or watchdog timeout).  ``0`` disables retry; the
        first transient failure is then terminal for that trial.
        Deterministic simulation failures (budget exhaustion,
        non-convergence) are never retried — they would fail identically.
    ``backoff_base`` / ``backoff_cap``
        Re-submission of attempt ``n`` (n >= 2) waits
        ``min(cap, base * 2**(n-2))`` seconds, stretched by the jitter
        below.  The wait is a *cooldown* — other trials keep the workers
        busy while a flaky one sits out its backoff.
    ``jitter``
        Fractional stretch applied to each backoff delay, drawn from a
        ``random.Random`` seeded by ``(task.index, task.seed, attempt)``
        — deterministic for a given sweep shape, so reruns schedule
        identically.
    ``trial_timeout``
        Wall-clock seconds one attempt may run before the watchdog kills
        its worker (``None`` disables the watchdog).  Only enforceable in
        supervised (``jobs > 1``) mode: an in-process trial cannot be
        preempted.
    ``on_exhausted``
        ``"record"`` (default) — a trial whose retries are exhausted is
        recorded as a :class:`~repro.experiments.sweep.TrialTimeout` /
        :class:`~repro.experiments.sweep.TrialFailure` and the sweep
        continues; ``"raise"`` — it aborts the sweep.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25
    trial_timeout: Optional[float] = None
    on_exhausted: str = "record"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigError(
                f"backoff_base/backoff_cap must be >= 0, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )
        if not 0 <= self.jitter <= 1:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise ConfigError(
                f"trial_timeout must be positive seconds or None, got "
                f"{self.trial_timeout}"
            )
        if self.on_exhausted not in ("record", "raise"):
            raise ConfigError(
                f"on_exhausted must be 'record' or 'raise', got "
                f"{self.on_exhausted!r}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts one trial may consume (first try + retries)."""
        return self.max_retries + 1

    def backoff_delay(self, index: int, seed: int, attempt: int) -> float:
        """Cooldown before re-submitting ``attempt`` (>= 2) of one task.

        Capped exponential with deterministic seeded jitter: the stream
        is keyed purely on ``(index, seed, attempt)``, so the same sweep
        shape backs off identically on every run — reproducible even in
        its failure handling.
        """
        if attempt < 2:
            return 0.0
        base = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 2)))
        if self.jitter == 0 or base == 0:
            return base
        stream = random.Random(
            ((index + 1) * 2654435761 + seed * 40503 + attempt * 97)
            & 0xFFFFFFFF
        )
        return base * (1.0 + self.jitter * stream.random())


@dataclass(frozen=True)
class SupervisionReport:
    """What the supervised executor observed during one sweep.

    ``metrics`` is a frozen :class:`~repro.telemetry.registry.
    MetricsSnapshot` carrying the same counts under the
    ``resilience.*`` names, so sweep-level telemetry aggregation can fold
    supervision activity in alongside simulation metrics.
    """

    trials: int = 0
    completed: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    worker_restarts: int = 0
    exhausted: int = 0
    metrics: Optional[MetricsSnapshot] = None

    def render(self) -> str:
        return (
            f"resilience: {self.completed}/{self.trials} trials completed, "
            f"{self.retries} retries, {self.timeouts} timeouts, "
            f"{self.worker_deaths} worker deaths "
            f"({self.worker_restarts} restarts), {self.exhausted} exhausted"
        )

    def merged(self, other: "SupervisionReport") -> "SupervisionReport":
        """Combine two reports (counts sum, telemetry snapshots aggregate).

        The reduction for callers that supervise several sweeps — the
        journaled resume loop runs one sweep per x, the service daemon
        one per job segment — and want a single roll-up.
        """
        snapshots = [
            snap for snap in (self.metrics, other.metrics) if snap is not None
        ]
        return SupervisionReport(
            trials=self.trials + other.trials,
            completed=self.completed + other.completed,
            retries=self.retries + other.retries,
            timeouts=self.timeouts + other.timeouts,
            worker_deaths=self.worker_deaths + other.worker_deaths,
            worker_restarts=self.worker_restarts + other.worker_restarts,
            exhausted=self.exhausted + other.exhausted,
            metrics=(
                MetricsSnapshot.aggregate(snapshots) if snapshots else None
            ),
        )


#: Deprecated: the most recent supervised run's report, per process.
#: Kept only so :func:`last_report` keeps answering; new code receives
#: reports through ``sweep(..., on_report=...)`` /
#: :func:`run_tasks_supervised`'s return value instead — a process-wide
#: global is wrong once one daemon runs many concurrent sweeps.
_LAST_REPORT: Optional[SupervisionReport] = None


def last_report() -> Optional[SupervisionReport]:
    """Deprecated: the report of the most recent supervised sweep in this
    process (``None`` before the first one).

    .. deprecated::
        Process-global state cannot distinguish concurrent sweeps (the
        service daemon runs many).  Pass ``on_report=`` to
        :func:`~repro.experiments.sweep.sweep` /
        :func:`~repro.experiments.journal.checkpointed_sweep`, or use the
        report returned by :func:`run_tasks_supervised`.
    """
    import warnings

    warnings.warn(
        "last_report() is deprecated: receive SupervisionReports through "
        "sweep(..., on_report=...) or run_tasks_supervised()'s return "
        "value instead of process-global state",
        DeprecationWarning,
        stacklevel=2,
    )
    return _LAST_REPORT


def _publish_report(report: SupervisionReport) -> None:
    global _LAST_REPORT
    _LAST_REPORT = report


def _mp_context():
    """Prefer ``fork`` (cheap per-trial workers, inherited imports); fall
    back to the platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _supervised_child(conn, worker_fn, task) -> None:
    """Worker-process body: run one task, ship the outcome, exit clean.

    Everything — including non-isolated errors like ``SanitizerError`` —
    goes back through the pipe so the supervisor can distinguish "the
    trial raised" from "the worker died".  An outcome that cannot be
    pickled is downgraded to a transportable error.
    """
    try:
        try:
            payload = ("ok", worker_fn(task))
        except BaseException as exc:  # noqa: BLE001 - ferried to supervisor
            payload = ("raise", exc)
        try:
            conn.send(payload)
        except Exception as exc:
            conn.send(
                (
                    "raise",
                    AnalysisError(
                        f"trial outcome for task {task.index} could not "
                        f"cross the process boundary: {exc}"
                    ),
                )
            )
    finally:
        conn.close()


@dataclass
class _Slot:
    """One live worker: its process, pipe, task, and deadlines."""

    process: multiprocessing.Process
    conn: multiprocessing.connection.Connection
    task: "TrialTask"
    attempt: int
    started: float
    deadline: Optional[float]


@dataclass
class _Counters:
    """Mutable supervision tallies, mirrored into a telemetry registry."""

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    worker_restarts: int = 0
    completed: int = 0
    exhausted: int = 0

    def bump(self, name: str) -> None:
        setattr(self, name, getattr(self, name) + 1)
        self.registry.counter(f"resilience.{name}").inc()

    def report(self, trials: int) -> SupervisionReport:
        return SupervisionReport(
            trials=trials,
            completed=self.completed,
            retries=self.retries,
            timeouts=self.timeouts,
            worker_deaths=self.worker_deaths,
            worker_restarts=self.worker_restarts,
            exhausted=self.exhausted,
            metrics=self.registry.snapshot(),
        )


def _drain(conn):
    """One non-blocking recv: the worker's payload, or ``"died"`` on EOF."""
    try:
        return conn.recv()
    except (EOFError, OSError):
        return "died"


def _reap(slot: _Slot) -> None:
    """Join a finished/killed worker (hard-kill stragglers) and close up."""
    slot.process.join(timeout=5.0)
    if slot.process.is_alive():  # pragma: no cover - defensive
        slot.process.kill()
        slot.process.join(timeout=5.0)
    try:
        slot.conn.close()
    except OSError:  # pragma: no cover - already closed
        pass


def _kill_slots(slots: List[_Slot]) -> None:
    """Hard-stop every live worker (abort path); never raises."""
    for slot in slots:
        try:
            if slot.process.is_alive():
                slot.process.kill()
        except Exception:
            pass
    for slot in slots:
        try:
            slot.process.join(timeout=5.0)
        except Exception:
            pass
        try:
            slot.conn.close()
        except Exception:
            pass


def _exhausted_failure(task: "TrialTask", error, attempt: int, elapsed: float):
    """Build the recorded failure for a trial that ran out of attempts."""
    from .sweep import TrialFailure, TrialTimeout

    if isinstance(error, TrialTimeoutError):
        return TrialTimeout(
            x=task.x,
            seed=task.seed,
            error=error,
            attempt=attempt,
            elapsed=elapsed,
            timeout=error.timeout,
        )
    return TrialFailure(
        x=task.x, seed=task.seed, error=error, attempt=attempt, elapsed=elapsed
    )


def run_tasks_supervised(
    tasks: Sequence["TrialTask"],
    jobs: int,
    policy: ResiliencePolicy,
    worker_fn: Optional[Callable] = None,
    on_progress: Optional["ProgressCallback"] = None,
) -> Tuple[Dict[int, object], SupervisionReport]:
    """Run every task to a final outcome under supervision.

    Returns ``(outcomes keyed by task index, report)``.  Outcomes are
    whatever ``worker_fn`` returned (:class:`~repro.experiments.sweep.
    TrialOutcome` for sweeps) or, for trials whose transient failures
    exhausted the retry budget under ``on_exhausted="record"``, a
    :class:`~repro.experiments.sweep.TrialFailure` /
    :class:`~repro.experiments.sweep.TrialTimeout`.

    A worker that *reports* an exception (rather than dying) aborts the
    whole run — that path carries non-isolated errors such as
    :class:`~repro.errors.SanitizerError`, exactly as the unsupervised
    executor propagates them.
    """
    from .sweep import TrialFailure, TrialProgress, run_trial

    if worker_fn is None:
        worker_fn = run_trial
    if not tasks:
        return {}, _Counters().report(0)

    context = _mp_context()
    counters = _Counters()
    outcomes: Dict[int, object] = {}
    #: (task, attempt) ready to start now, in deterministic task order.
    pending: List[Tuple["TrialTask", int]] = [(task, 1) for task in tasks]
    #: (ready_at, task, attempt) sitting out a backoff cooldown.
    cooling: List[Tuple[float, "TrialTask", int]] = []
    slots: List[_Slot] = []

    def spawn(task: "TrialTask", attempt: int) -> None:
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_supervised_child,
            args=(child_conn, worker_fn, task),
            name=f"repro-trial-{task.index}-a{attempt}",
        )
        process.start()
        child_conn.close()
        now = time.monotonic()
        deadline = (
            now + policy.trial_timeout
            if policy.trial_timeout is not None
            else None
        )
        slots.append(
            _Slot(
                process=process,
                conn=parent_conn,
                task=task,
                attempt=attempt,
                started=now,
                deadline=deadline,
            )
        )

    def finish(slot: _Slot, outcome: object) -> None:
        outcomes[slot.task.index] = outcome
        counters.bump("completed")
        if on_progress is not None:
            on_progress(
                TrialProgress(
                    done=len(outcomes),
                    total=len(tasks),
                    x=slot.task.x,
                    seed=slot.task.seed,
                    ok=not isinstance(outcome, TrialFailure),
                )
            )

    def transient_failure(slot: _Slot, error) -> None:
        """Worker death or timeout: retry with backoff, or exhaust."""
        elapsed = time.monotonic() - slot.started
        if slot.attempt < policy.max_attempts:
            counters.bump("retries")
            counters.bump("worker_restarts")
            delay = policy.backoff_delay(
                slot.task.index, slot.task.seed, slot.attempt + 1
            )
            cooling.append(
                (time.monotonic() + delay, slot.task, slot.attempt + 1)
            )
            return
        counters.bump("exhausted")
        if policy.on_exhausted == "raise":
            _kill_slots(slots)
            _publish_report(counters.report(len(tasks)))
            raise error
        finish(slot, _exhausted_failure(slot.task, error, slot.attempt, elapsed))

    try:
        while pending or cooling or slots:
            now = time.monotonic()
            # Cooldowns that elapsed rejoin the queue in task order.
            ready = [item for item in cooling if item[0] <= now]
            if ready:
                cooling[:] = [item for item in cooling if item[0] > now]
                pending.extend(
                    (task, attempt)
                    for _at, task, attempt in sorted(
                        ready, key=lambda item: item[1].index
                    )
                )
            while pending and len(slots) < jobs:
                task, attempt = pending.pop(0)
                spawn(task, attempt)

            if not slots:
                # Everything is cooling down; sleep until the first wake.
                wake = min(at for at, _t, _a in cooling)
                time.sleep(max(0.0, min(wake - time.monotonic(), _TICK)))
                continue

            timeout = _TICK
            deadlines = [s.deadline for s in slots if s.deadline is not None]
            if deadlines:
                timeout = max(0.0, min(min(deadlines) - now, _TICK))
            readable = multiprocessing.connection.wait(
                [slot.conn for slot in slots], timeout=timeout
            )

            now = time.monotonic()
            retained: List[_Slot] = []
            for slot in slots:
                # One of: ("ok"|"raise", payload), "died", or None (running).
                result = None
                if slot.conn in readable or slot.conn.poll():
                    result = _drain(slot.conn)
                if result is None and not slot.process.is_alive():
                    # Re-poll once: the result may have landed between the
                    # wait() call and the liveness check.
                    result = _drain(slot.conn) if slot.conn.poll() else "died"
                if result is None:
                    if slot.deadline is not None and now >= slot.deadline:
                        slot.process.kill()
                        _reap(slot)
                        counters.bump("timeouts")
                        transient_failure(
                            slot,
                            TrialTimeoutError(
                                f"trial (x={slot.task.x}, "
                                f"seed={slot.task.seed}) exceeded its "
                                f"{policy.trial_timeout}s wall-clock budget "
                                f"on attempt {slot.attempt} and was killed",
                                timeout=policy.trial_timeout or 0.0,
                                attempts=slot.attempt,
                            ),
                        )
                    else:
                        retained.append(slot)
                    continue
                if result == "died":
                    _reap(slot)
                    exitcode = slot.process.exitcode or 0
                    counters.bump("worker_deaths")
                    transient_failure(
                        slot,
                        WorkerCrashError(
                            f"worker running trial (x={slot.task.x}, "
                            f"seed={slot.task.seed}) died with exit code "
                            f"{exitcode} on attempt {slot.attempt}",
                            exitcode=exitcode,
                            attempts=slot.attempt,
                        ),
                    )
                    continue
                kind, payload = result
                _reap(slot)
                if kind == "raise":
                    _kill_slots([s for s in slots if s is not slot])
                    _publish_report(counters.report(len(tasks)))
                    raise payload
                if isinstance(payload, TrialFailure):
                    payload = replace(
                        payload,
                        attempt=slot.attempt,
                        elapsed=now - slot.started,
                    )
                elif hasattr(payload, "attempt"):
                    payload.attempt = slot.attempt
                finish(slot, payload)
            slots = retained
    except BaseException:
        _kill_slots(slots)
        raise

    report = counters.report(len(tasks))
    _publish_report(report)
    return outcomes, report


def run_trial_resilient(task: "TrialTask", policy: Optional[ResiliencePolicy] = None):
    """Execute one trial in-process with attempt/elapsed provenance.

    The ``jobs=1`` resilient path: no subprocess, no preemption (an
    in-process hang cannot be killed, so ``policy.trial_timeout`` is not
    enforced here — that requires the supervised ``jobs > 1`` executor),
    but outcomes carry the same ``attempt``/``elapsed`` provenance as
    supervised ones, and the wrapper's overhead over a bare
    :func:`~repro.experiments.sweep.run_trial` is one clock read per
    trial — benchmarked under 5% by the ``chaos-smoke`` CI job.
    """
    from .sweep import TrialFailure, run_trial

    started = time.monotonic()
    outcome = run_trial(task)
    elapsed = time.monotonic() - started
    if isinstance(outcome, TrialFailure):
        return replace(outcome, attempt=1, elapsed=elapsed)
    outcome.attempt = 1
    return outcome
