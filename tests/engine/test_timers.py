"""Unit tests for repro.engine.timers."""

import pytest

from repro.engine import Scheduler, Timer
from repro.errors import SimulationError


@pytest.fixture
def fired():
    return []


@pytest.fixture
def timer(scheduler, fired):
    return Timer(scheduler, lambda: fired.append(scheduler.now), name="t")


class TestLifecycle:
    def test_idle_initially(self, timer):
        assert not timer.running
        assert timer.expires_at is None
        assert timer.remaining() == 0.0

    def test_start_arms(self, scheduler, timer):
        timer.start(5.0)
        assert timer.running
        assert timer.expires_at == 5.0
        assert timer.remaining() == 5.0

    def test_fires_at_expiry(self, scheduler, timer, fired):
        timer.start(5.0)
        scheduler.run()
        assert fired == [5.0]
        assert not timer.running

    def test_start_while_running_raises(self, timer):
        timer.start(5.0)
        with pytest.raises(SimulationError, match="already running"):
            timer.start(1.0)

    def test_restart_replaces_expiry(self, scheduler, timer, fired):
        timer.start(5.0)
        timer.restart(10.0)
        scheduler.run()
        assert fired == [10.0]

    def test_restart_when_idle_is_plain_start(self, scheduler, timer, fired):
        timer.restart(3.0)
        scheduler.run()
        assert fired == [3.0]

    def test_cancel_prevents_firing(self, scheduler, timer, fired):
        timer.start(5.0)
        timer.cancel()
        scheduler.run()
        assert fired == []
        assert not timer.running

    def test_cancel_idle_is_noop(self, timer):
        timer.cancel()
        assert not timer.running

    def test_can_start_again_after_firing(self, scheduler, timer, fired):
        timer.start(1.0)
        scheduler.run()
        timer.start(2.0)
        scheduler.run()
        assert fired == [1.0, 3.0]


class TestRemaining:
    def test_remaining_decreases_with_clock(self, scheduler, timer):
        timer.start(10.0)
        scheduler.call_at(4.0, lambda: None)
        scheduler.run(until=4.0)
        assert timer.remaining() == pytest.approx(6.0)

    def test_restart_from_callback_is_allowed(self, scheduler):
        times = []

        def on_fire():
            times.append(scheduler.now)
            if len(times) < 3:
                periodic.start(1.0)

        periodic = Timer(scheduler, on_fire)
        periodic.start(1.0)
        scheduler.run()
        assert times == [1.0, 2.0, 3.0]
