"""Unit tests for repro.topology.graph."""

import pytest

from repro.errors import TopologyError
from repro.topology import DEFAULT_LINK_DELAY, Topology


@pytest.fixture
def triangle():
    return Topology.from_edges([(0, 1), (1, 2), (0, 2)], name="triangle")


class TestConstruction:
    def test_add_edge_creates_nodes(self):
        topo = Topology()
        topo.add_edge(3, 7)
        assert topo.nodes == [3, 7]
        assert topo.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Topology().add_edge(1, 1)

    def test_negative_node_rejected(self):
        with pytest.raises(TopologyError):
            Topology().add_node(-1)

    def test_non_positive_delay_rejected(self):
        with pytest.raises(TopologyError):
            Topology().add_edge(0, 1, delay=0.0)

    def test_duplicate_edge_updates_delay(self):
        topo = Topology()
        topo.add_edge(0, 1, delay=0.002)
        topo.add_edge(0, 1, delay=0.010)
        assert topo.num_edges == 1
        assert topo.link_delay(0, 1) == 0.010

    def test_remove_edge(self, triangle):
        triangle.remove_edge(0, 1)
        assert not triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)
        assert triangle.num_edges == 2

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(TopologyError):
            triangle.remove_edge(0, 5)


class TestQueries:
    def test_neighbors_sorted(self):
        topo = Topology.from_edges([(5, 1), (5, 9), (5, 3)])
        assert topo.neighbors(5) == [1, 3, 9]

    def test_neighbors_of_unknown_node_raises(self, triangle):
        with pytest.raises(TopologyError):
            triangle.neighbors(99)

    def test_degree(self, triangle):
        assert triangle.degree(0) == 2

    def test_edge_symmetry(self, triangle):
        assert triangle.has_edge(0, 1) and triangle.has_edge(1, 0)
        assert triangle.link_delay(0, 1) == triangle.link_delay(1, 0)

    def test_edges_yields_each_once_with_u_lt_v(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        assert all(u < v for u, v, _delay in edges)

    def test_default_delay_is_2ms(self, triangle):
        assert triangle.link_delay(0, 1) == DEFAULT_LINK_DELAY == 0.002

    def test_degree_sequence(self):
        topo = Topology.from_edges([(0, 1), (0, 2), (0, 3)])
        assert topo.degree_sequence() == [1, 1, 1, 3]

    def test_lowest_degree_nodes_prefers_small_ids_on_tie(self):
        topo = Topology.from_edges([(0, 1), (0, 2), (0, 3)])
        assert topo.lowest_degree_nodes(2) == [1, 2]


class TestConnectivity:
    def test_connected_triangle(self, triangle):
        assert triangle.is_connected()

    def test_disconnected_graph(self):
        topo = Topology.from_edges([(0, 1), (2, 3)])
        assert not topo.is_connected()

    def test_empty_topology_is_connected(self):
        assert Topology().is_connected()

    def test_component_of(self):
        topo = Topology.from_edges([(0, 1), (2, 3)])
        assert topo.component_of(0) == {0, 1}

    def test_component_without_edge(self):
        topo = Topology.from_edges([(0, 1), (1, 2)])
        assert topo.component_of(0, without_edge=(1, 2)) == {0, 1}

    def test_cut_edge_detection(self):
        topo = Topology.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        assert topo.is_cut_edge(2, 3)
        assert not topo.is_cut_edge(0, 1)


class TestTransforms:
    def test_copy_is_independent(self, triangle):
        dup = triangle.copy()
        dup.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)
        assert not dup.has_edge(0, 1)

    def test_copy_equals_original(self, triangle):
        assert triangle.copy() == triangle

    def test_relabeled(self, triangle):
        renamed = triangle.relabeled({0: 10, 1: 11, 2: 12})
        assert renamed.nodes == [10, 11, 12]
        assert renamed.has_edge(10, 11)

    def test_relabeled_rejects_non_injective_mapping(self, triangle):
        with pytest.raises(TopologyError):
            triangle.relabeled({0: 5, 1: 5})

    def test_to_networkx_roundtrip_structure(self, triangle):
        graph = triangle.to_networkx()
        assert set(graph.nodes) == {0, 1, 2}
        assert graph.number_of_edges() == 3
        assert graph[0][1]["delay"] == DEFAULT_LINK_DELAY

    def test_equality_ignores_name(self):
        a = Topology.from_edges([(0, 1)], name="a")
        b = Topology.from_edges([(0, 1)], name="b")
        assert a == b
