"""A determinism linter for the simulator's own source tree.

The paper's loop-duration results (worst case ``(m-1) × M`` seconds per
m-node loop) are only reproducible when every trial is bit-for-bit
deterministic under a fixed seed.  That property is easy to lose by
accident: one ``time.time()`` in a hot path, one unseeded ``random``
draw, one ``for`` loop over a ``set`` that decides message emission
order.  This module is a custom AST pass that rejects those patterns
*statically*, before they ever corrupt a measurement.

Rules (each violation carries the rule's short name):

``wall-clock`` (REP101)
    No wall-clock reads (``time.time``, ``datetime.now``,
    ``perf_counter``...) inside the simulator.  Simulation time comes
    from :attr:`repro.engine.scheduler.Scheduler.now`, nothing else.
``unseeded-random`` (REP102)
    No module-level ``random`` draws and no seedless ``random.Random()``
    outside :mod:`repro.engine.rng`.  All randomness must flow through
    the run's named, seeded streams.
``unordered-iteration`` (REP103)
    No iteration (``for``, comprehensions, ``list()``/``tuple()``
    materialization) directly over ``set``/``frozenset`` values — wrap
    in ``sorted()``.  ``dict.values()``/``dict.keys()`` iteration is
    additionally rejected when the loop body schedules events or emits
    messages: insertion order is deterministic *today*, but a
    scheduler-feeding loop must make its order explicit.
``mutable-default`` (REP104)
    No mutable default arguments (``[]``, ``{}``, ``set()``...) in any
    function signature — shared mutable state across events is a
    classic cross-run contamination vector.
``float-time-eq`` (REP105)
    No ``==``/``!=`` between floating-point simulation timestamps
    (operands named ``now``, ``time``, ``*_time``...).  Exact float
    equality on computed times is almost always a latent bug; compare
    with an ordering or an explicit tolerance.
``uninterned-aspath`` (REP106)
    No direct ``AsPath(...)`` construction outside :mod:`repro.bgp.path`.
    Un-interned paths silently disable the identity-equality fast path
    and duplicate the per-path hash/frozenset work; obtain paths through
    ``AsPath.of()`` / ``intern_path()`` or the path algebra methods,
    which always return canonical instances.
``stateful-policy-hook`` (REP107)
    No assignments to ``self.*`` (and no ``global`` declarations) inside
    the decision hooks (``accept_import``, ``local_pref``,
    ``preference_key``, ``accept_export``) of a ``RoutingPolicy``
    subclass.  The policy contract says hooks are pure functions of their
    arguments; hook-local mutable state breaks the decision cache, the
    static stability analyzer (which assumes re-querying a hook is
    side-effect free), and cross-run determinism.  Configure state in
    ``__init__`` instead.

A line may opt out with a justification comment::

    if a.time == b.time:  # lint: allow(float-time-eq) -- same source value

Run it as ``python -m repro lint [paths...]`` (the CI gate) or through
:func:`lint_paths` / :func:`lint_source` programmatically.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: rule short-name -> (code, one-line description)
RULES: Dict[str, Tuple[str, str]] = {
    "wall-clock": (
        "REP101", "wall-clock read inside the simulator; use Scheduler.now"
    ),
    "unseeded-random": (
        "REP102",
        "module-level / unseeded randomness; draw from engine.rng streams",
    ),
    "unordered-iteration": (
        "REP103", "iteration over an unordered collection; wrap in sorted()"
    ),
    "mutable-default": (
        "REP104", "mutable default argument in a function signature"
    ),
    "float-time-eq": (
        "REP105", "== / != between floating-point simulation timestamps"
    ),
    "uninterned-aspath": (
        "REP106",
        "direct AsPath(...) construction bypasses the intern table; use "
        "AsPath.of() / intern_path()",
    ),
    "stateful-policy-hook": (
        "REP107",
        "policy decision hook mutates state; hooks must be pure functions "
        "of their arguments (configure in __init__)",
    ),
}

#: Per-rule path suffixes that are exempt (the one sanctioned home of the
#: pattern).  Matched against POSIX-style path suffixes.
#:
#: ``telemetry/profiler.py`` is the harness-side wall-clock boundary: it
#: times sweeps, figure drivers, and benchmarks — activity *about* the
#: simulation, never *inside* it.  Nothing under engine/net/bgp/dataplane
#: may import it, so exempting this one file keeps REP101 airtight for
#: the simulator while giving harness profiling a sanctioned home.  Any
#: wall-clock read in other telemetry modules (registry, timeline, probe)
#: still trips REP101 — the tests pin that.
RULE_EXEMPT_SUFFIXES: Dict[str, Tuple[str, ...]] = {
    "unseeded-random": ("engine/rng.py",),
    # resilience.py is harness-side supervision *about* the simulation
    # (watchdog deadlines, backoff cooldowns) — wall clock is its job,
    # exactly like the profiler's.  The service modules sit entirely on
    # the harness side of the boundary too: job timestamps, bench
    # provenance, and execution timelines are wall-clock by nature, and
    # nothing under engine/net/bgp/dataplane may import them.
    "wall-clock": (
        "telemetry/profiler.py",
        "experiments/resilience.py",
        "service/queue.py",
        "service/executor.py",
        "service/bench.py",
        "service/daemon.py",
    ),
    # path.py is the intern table's home: its factories construct the
    # canonical instances everyone else must obtain via AsPath.of().
    "uninterned-aspath": ("bgp/path.py",),
}

_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

_RANDOM_DRAW_FUNCS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits", "randbytes", "seed",
})

#: Attribute-call names whose presence in a loop body marks the loop as
#: feeding the scheduler or the message plane.
_EMISSION_CALLS = frozenset({"call_at", "call_after", "send", "submit"})

_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "defaultdict", "Counter", "deque", "OrderedDict",
})

#: The RoutingPolicy decision hooks bound by the purity contract (REP107).
_POLICY_HOOKS = frozenset({
    "accept_import", "local_pref", "preference_key", "accept_export",
})

_TIMEY_NAME = re.compile(r"^(now|_now|time|timestamp|.*_time|.*_now)$")

_ALLOW_COMMENT = re.compile(r"#\s*lint:\s*allow\(([a-z0-9_,\s-]+)\)")


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at one source location.

    ``suppressed`` is True for findings neutralized by a
    ``# lint: allow(rule)`` comment; they are excluded from default
    output and never affect the exit code, but ``--format json`` can
    surface them so CI diffs see the full picture.
    """

    rule: str
    code: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def render(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"[{self.rule}] {self.message}{tag}"
        )

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
            "suppressed": self.suppressed,
        }


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _SetTypeTracker:
    """Best-effort local inference of which names hold ``set`` values.

    Tracks, per module: function-local names assigned set-producing
    expressions, and ``self.<attr>`` targets assigned set-producing
    expressions anywhere in their class (the speaker's ``_origins``
    pattern).  Deliberately simple — no flow sensitivity — because the
    goal is catching the common shapes, not soundness.
    """

    _SET_METHODS = frozenset({
        "union", "intersection", "difference", "symmetric_difference", "copy",
    })
    _SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

    def __init__(self) -> None:
        self.local_sets: Set[str] = set()
        self.attr_sets: Set[str] = set()

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._SET_METHODS
                and self.is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._SET_BINOPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.local_sets
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.attr_sets
            )
        return False

    def observe_assignment(self, target: ast.AST, value: ast.AST) -> None:
        if not self.is_set_expr(value):
            return
        if isinstance(target, ast.Name):
            self.local_sets.add(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.attr_sets.add(target.attr)


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, exempt_rules: Set[str]) -> None:
        self.path = path
        self.exempt_rules = exempt_rules
        self.violations: List[LintViolation] = []
        # import alias -> real module name ("time", "random", "datetime")
        self.module_aliases: Dict[str, str] = {}
        # bare name -> dotted origin ("datetime.datetime", "time.time", ...)
        self.from_imports: Dict[str, str] = {}
        self.sets = _SetTypeTracker()

    # ------------------------------------------------------------------

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.exempt_rules:
            return
        code, _ = RULES[rule]
        self.violations.append(
            LintViolation(
                rule=rule,
                code=code,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    # ------------------------------------------------------------------
    # Imports
    # ------------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in ("time", "random", "datetime"):
                self.module_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in ("time", "datetime", "random"):
            for alias in node.names:
                origin = f"{node.module}.{alias.name}"
                self.from_imports[alias.asname or alias.name] = origin
                if node.module == "random" and alias.name in _RANDOM_DRAW_FUNCS:
                    self.report(
                        "unseeded-random",
                        node,
                        f"importing random.{alias.name} bypasses the seeded "
                        f"stream discipline; use RandomStreams",
                    )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Calls: wall clock, module-level random, list/tuple over sets
    # ------------------------------------------------------------------

    def _resolve_call_name(self, func: ast.AST) -> Optional[str]:
        """Resolve a called name through the module's import aliases."""
        dotted = _dotted_name(func)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        if root in self.module_aliases:
            dotted = self.module_aliases[root] + ("." + rest if rest else "")
        elif root in self.from_imports:
            dotted = self.from_imports[root] + ("." + rest if rest else "")
        return dotted

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve_call_name(node.func)
        if resolved in _WALL_CLOCK_CALLS:
            self.report(
                "wall-clock",
                node,
                f"{resolved}() reads the host clock; simulation code must "
                f"use Scheduler.now",
            )
        elif resolved is not None and resolved.startswith("random."):
            tail = resolved.split(".", 1)[1]
            if tail in _RANDOM_DRAW_FUNCS:
                self.report(
                    "unseeded-random",
                    node,
                    f"{resolved}() draws from the shared module-level RNG; "
                    f"use a named RandomStreams stream",
                )
            elif tail == "Random" and not node.args and not node.keywords:
                self.report(
                    "unseeded-random",
                    node,
                    "random.Random() without a seed is entropy-seeded; pass "
                    "an explicit derived seed",
                )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and len(node.args) == 1
            and self.sets.is_set_expr(node.args[0])
        ):
            self.report(
                "unordered-iteration",
                node,
                f"{node.func.id}() over a set materializes nondeterministic "
                f"order; use sorted()",
            )
        # The *called object itself* must be AsPath — `AsPath(...)` or
        # `path.AsPath(...)`; classmethod factories (`AsPath.of(...)`,
        # `AsPath.empty()`) resolve to "AsPath.of" etc. and pass.
        if (
            isinstance(node.func, ast.Name) and node.func.id == "AsPath"
        ) or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "AsPath"
        ):
            self.report(
                "uninterned-aspath",
                node,
                "AsPath(...) constructs an un-interned path; use AsPath.of() "
                "or intern_path() so equality stays an identity check",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Assignments feed the set tracker
    # ------------------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self.sets.observe_assignment(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.sets.observe_assignment(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.sets.observe_assignment(node.target, node.value)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Iteration order
    # ------------------------------------------------------------------

    def _check_iteration(self, iter_node: ast.AST, body: Sequence[ast.stmt]) -> None:
        if self.sets.is_set_expr(iter_node):
            self.report(
                "unordered-iteration",
                iter_node,
                "iterating a set yields hash order; wrap in sorted()",
            )
            return
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr in ("values", "keys")
            and body
            and self._body_emits(body)
        ):
            self.report(
                "unordered-iteration",
                iter_node,
                f"loop over .{iter_node.func.attr}() schedules events or "
                f"emits messages; iterate an explicitly sorted view",
            )

    def _body_emits(self, body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                    attr = sub.func.attr
                    if attr in _EMISSION_CALLS or attr.startswith("schedule_"):
                        return True
        return False

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node.body)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter, ())
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # ------------------------------------------------------------------
    # Function signatures: mutable defaults
    # ------------------------------------------------------------------

    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                self.report(
                    "mutable-default",
                    default,
                    f"default argument of {node.name}() is mutable and shared "
                    f"across calls; default to None",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self.report(
                    "mutable-default",
                    default,
                    "default argument of lambda is mutable and shared across "
                    "calls; default to None",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Float timestamp equality
    # ------------------------------------------------------------------

    @staticmethod
    def _is_timey(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return bool(_TIMEY_NAME.match(node.attr))
        if isinstance(node, ast.Name):
            return bool(_TIMEY_NAME.match(node.id))
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            # None sentinels are identity-style checks, not float equality.
            if any(
                isinstance(o, ast.Constant) and o.value is None
                for o in (left, right)
            ):
                continue
            if self._is_timey(left) and self._is_timey(right):
                self.report(
                    "float-time-eq",
                    node,
                    "exact equality between simulation timestamps; compare "
                    "with an ordering or an explicit tolerance",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Policy-hook purity (REP107)
    # ------------------------------------------------------------------

    @staticmethod
    def _is_policy_class(node: ast.ClassDef) -> bool:
        """True when any base class name ends in ``Policy``.

        Syntactic by design (no type resolution): the convention in this
        codebase is that every RoutingPolicy descendant keeps the suffix,
        and the rule must work file-by-file without imports.
        """
        for base in node.bases:
            dotted = _dotted_name(base)
            if dotted is not None and dotted.split(".")[-1].endswith("Policy"):
                return True
        return False

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._is_policy_class(node):
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name in _POLICY_HOOKS
                ):
                    self._check_policy_hook(node.name, item)
        self.generic_visit(node)

    def _check_policy_hook(self, class_name: str, func: ast.AST) -> None:
        hook = f"{class_name}.{func.name}()"
        for sub in ast.walk(func):
            if isinstance(sub, ast.Global):
                self.report(
                    "stateful-policy-hook",
                    sub,
                    f"{hook} declares global {', '.join(sub.names)}; policy "
                    f"hooks must be pure functions of their arguments",
                )
                continue
            if isinstance(sub, ast.Assign):
                targets = sub.targets
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                targets = [sub.target]
            else:
                continue
            for target in targets:
                for leaf in ast.walk(target):
                    if (
                        isinstance(leaf, ast.Attribute)
                        and isinstance(leaf.value, ast.Name)
                        and leaf.value.id == "self"
                    ):
                        self.report(
                            "stateful-policy-hook",
                            leaf,
                            f"{hook} assigns self.{leaf.attr}; policy hooks "
                            f"must be pure — configure state in __init__",
                        )


def _prescan_set_attrs(tree: ast.Module, tracker: _SetTypeTracker) -> None:
    """Collect ``self.<attr> = set(...)`` targets across the whole module.

    Done before the lint walk so a method can be flagged for iterating an
    attribute that ``__init__`` (visited later or earlier) established as a
    set.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                tracker.observe_assignment(target, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            tracker.observe_assignment(node.target, node.value)


def _suppressed_rules_by_line(source: str) -> Dict[int, Set[str]]:
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_COMMENT.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            suppressed[lineno] = rules
    return suppressed


def lint_source(
    source: str, path: str = "<string>", keep_suppressed: bool = False
) -> List[LintViolation]:
    """Lint one module's source text; returns violations in line order.

    By default, findings neutralized by a ``# lint: allow(rule)`` comment
    are dropped.  With ``keep_suppressed=True`` they are returned too,
    flagged with ``suppressed=True`` — callers deciding an exit code must
    then filter on the flag themselves.
    """
    tree = ast.parse(source, filename=path)
    posix = Path(path).as_posix()
    exempt = {
        rule
        for rule, suffixes in RULE_EXEMPT_SUFFIXES.items()
        if any(posix.endswith(suffix) for suffix in suffixes)
    }
    linter = _Linter(path, exempt)
    _prescan_set_attrs(tree, linter.sets)
    linter.visit(tree)
    suppressed = _suppressed_rules_by_line(source)
    kept: List[LintViolation] = []
    for violation in linter.violations:
        if violation.rule in suppressed.get(violation.line, ()):
            if keep_suppressed:
                kept.append(replace(violation, suppressed=True))
        else:
            kept.append(violation)
    return sorted(kept, key=lambda v: (v.line, v.col, v.code))


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(sorted(path.rglob("*.py")))
        else:
            found.append(path)
    return found


def lint_paths(
    paths: Iterable[str], keep_suppressed: bool = False
) -> List[LintViolation]:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    Output order is deterministic regardless of filesystem enumeration:
    sorted by (path, line, col, code).
    """
    violations: List[LintViolation] = []
    for file in iter_python_files(paths):
        violations.extend(
            lint_source(file.read_text(), str(file), keep_suppressed)
        )
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.code))
