"""Figure 9: the four convergence enhancements under Tlong.

Paper shape: Assertion most effective in B-Cliques; Ghost Flushing >= 80%
looping reduction on Internet-derived graphs; WRATE slightly lengthens
Tlong convergence.  The paper's strongest WRATE claim — an order of
magnitude MORE looping on Internet-derived Tlong — does NOT reproduce on
our synthetic AS graphs (WRATE reduces looping there, as it does on the
paper's own B-Clique results); the check is recorded without being
asserted, and EXPERIMENTS.md discusses why.
"""

from _support import record

from repro.experiments.figures import figure9a, figure9b, figure9c, figure9d

BCLIQUE_SIZES = (4, 6, 8, 10)
INTERNET_SIZES = (29, 48, 75)


def test_fig9a_ttl_normalized_bclique(benchmark):
    figure = benchmark.pedantic(
        lambda: figure9a(sizes=BCLIQUE_SIZES, mrai=30.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    final = {name: values[-1] for name, values in figure.series.items()}
    # Assertion and Ghost Flushing both cut B-Clique Tlong looping hard.
    assert final["assertion"] < 0.5
    assert final["ghost-flushing"] < 0.5


def test_fig9b_convergence_bclique(benchmark):
    figure = benchmark.pedantic(
        lambda: figure9b(sizes=BCLIQUE_SIZES, mrai=30.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    final = {name: values[-1] for name, values in figure.series.items()}
    # WRATE slightly increases Tlong convergence time in B-Cliques.
    assert final["wrate"] >= final["standard"] * 0.95


def test_fig9c_ttl_internet(benchmark):
    figure = benchmark.pedantic(
        lambda: figure9c(sizes=INTERNET_SIZES, mrai=30.0, seeds=(0, 1, 2, 3)),
        rounds=1,
        iterations=1,
    )
    # The wrate-regression check is recorded, not asserted (see module
    # docstring): our synthetic graphs do not reproduce the 10x claim.
    record(benchmark, figure, require_checks=False)
    final = {name: values[-1] for name, values in figure.series.items()}
    assert final["ghost-flushing"] < final["standard"]


def test_fig9d_convergence_internet(benchmark):
    figure = benchmark.pedantic(
        lambda: figure9d(sizes=INTERNET_SIZES, mrai=30.0, seeds=(0, 1, 2, 3)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    final = {name: values[-1] for name, values in figure.series.items()}
    # WRATE worsens Tlong convergence on Internet-derived graphs too.
    assert final["wrate"] > final["standard"]
