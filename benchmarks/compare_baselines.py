"""Compare a fresh BENCH_hotpath.json against the committed baseline.

The CI ``bench-regression`` job runs ``bench_hotpath.py`` (median of 3) and
then::

    python benchmarks/compare_baselines.py \
        benchmarks/baselines/BENCH_hotpath.json BENCH_hotpath.json

Exit status 1 — failing the job — when any scenario's median wall-clock
regressed more than ``--tolerance`` (default 25%) over the baseline, or
when a baseline scenario is missing from the candidate.  Speedups and
small fluctuations pass; CI runners are shared hardware, so the tolerance
is deliberately generous and the benchmark reports medians.

Updates/sec and update counts are printed for context but not gated: the
update count is digest-checked behavior (it cannot drift without the
determinism job failing first), and updates/sec is just its ratio with the
gated wall-clock.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence


def load(path: Path) -> Dict:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SystemExit(f"error: {path} does not exist")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}")
    if not isinstance(document.get("results"), dict):
        raise SystemExit(f"error: {path} has no 'results' mapping")
    return document


def compare(
    baseline: Dict, candidate: Dict, tolerance: float
) -> int:
    """Print a per-scenario table; return the number of regressions."""
    regressions = 0
    header = (
        f"{'scenario':<12} {'baseline':>12} {'candidate':>12} "
        f"{'ratio':>8}  verdict"
    )
    print(header)
    print("-" * len(header))
    for name in sorted(baseline["results"]):
        base = baseline["results"][name]
        cand = candidate["results"].get(name)
        if cand is None:
            print(f"{name:<12} {'—':>12} {'—':>12} {'—':>8}  MISSING")
            regressions += 1
            continue
        base_wall = float(base["wall_clock_s"])
        cand_wall = float(cand["wall_clock_s"])
        ratio = cand_wall / base_wall if base_wall > 0 else float("inf")
        regressed = ratio > 1.0 + tolerance
        verdict = f"REGRESSED (> +{tolerance:.0%})" if regressed else "ok"
        print(
            f"{name:<12} {base_wall * 1e3:>10.1f}ms {cand_wall * 1e3:>10.1f}ms "
            f"{ratio:>7.2f}x  {verdict}"
        )
        print(
            f"{'':<12} {base.get('updates_per_s', '?'):>10} u/s "
            f"{cand.get('updates_per_s', '?'):>10} u/s"
        )
        if regressed:
            regressions += 1
    return regressions


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate a benchmark run against a committed baseline."
    )
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument("candidate", type=Path, help="freshly-measured JSON")
    parser.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRACTION",
        help="allowed wall-clock growth before failing (default 0.25 = +25%%)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    if baseline.get("schema") != candidate.get("schema"):
        print(
            f"warning: schema mismatch "
            f"(baseline {baseline.get('schema')}, "
            f"candidate {candidate.get('schema')})",
            file=sys.stderr,
        )

    regressions = compare(baseline, candidate, args.tolerance)
    if regressions:
        print(
            f"\n{regressions} scenario(s) regressed beyond "
            f"+{args.tolerance:.0%}; if intentional, refresh "
            f"benchmarks/baselines/BENCH_hotpath.json (see README).",
            file=sys.stderr,
        )
        return 1
    print("\nall scenarios within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
