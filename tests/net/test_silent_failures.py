"""Tests for silent link failures at the network layer."""

import pytest

from repro.engine import Scheduler
from repro.net import Network, Node
from repro.topology import chain


class Recorder(Node):
    def __init__(self, node_id, scheduler):
        super().__init__(node_id, scheduler)
        self.inbox = []
        self.events = []

    def handle_message(self, src, message):
        self.inbox.append((src, message))

    def on_link_down(self, neighbor):
        self.events.append(("down", neighbor))

    def on_link_up(self, neighbor):
        self.events.append(("up", neighbor))


@pytest.fixture
def net(scheduler):
    return Network(chain(3), scheduler, lambda nid, sch: Recorder(nid, sch))


class TestSilentFailure:
    def test_no_notifications(self, net):
        net.fail_link(0, 1, silent=True)
        assert net.node(0).events == []
        assert net.node(1).events == []

    def test_link_still_physically_down(self, net):
        net.fail_link(0, 1, silent=True)
        assert not net.link_is_up(0, 1)
        assert net.live_neighbors(1) == [2]

    def test_in_flight_messages_still_dropped(self, scheduler, net):
        net.send(0, 1, "doomed")
        net.fail_link(0, 1, silent=True)
        scheduler.run()
        assert net.node(1).inbox == []

    def test_silent_is_idempotent_and_mixable(self, net):
        net.fail_link(0, 1, silent=True)
        net.fail_link(0, 1, silent=False)  # already down: no late notification
        assert net.node(0).events == []

    def test_restore_after_silent_failure_notifies(self, net):
        net.fail_link(0, 1, silent=True)
        net.restore_link(0, 1)
        assert ("up", 1) in net.node(0).events
        assert ("up", 0) in net.node(1).events

    def test_scheduled_silent_failure(self, scheduler, net):
        net.schedule_link_failure(0, 1, at=2.0, silent=True)
        scheduler.run()
        assert not net.link_is_up(0, 1)
        assert net.node(0).events == []

    def test_scheduled_loud_failure_still_notifies(self, scheduler, net):
        net.schedule_link_failure(0, 1, at=2.0)
        scheduler.run()
        assert ("down", 1) in net.node(0).events
