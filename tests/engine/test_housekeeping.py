"""Tests for housekeeping events: quiescence, settle windows, upgrades."""

import pytest

from repro.engine import Scheduler, SerialProcessor, Timer


class TestQuiescence:
    def test_housekeeping_does_not_block_quiescence(self, scheduler):
        fired = []
        scheduler.call_at(1.0, lambda: fired.append("real"))

        def heartbeat():
            fired.append("hk")
            scheduler.call_after(5.0, heartbeat, housekeeping=True)

        scheduler.call_after(5.0, heartbeat, housekeeping=True)
        end = scheduler.run(max_events=100)
        # The substantive event fires; the self-re-arming heartbeat never
        # keeps the run alive.
        assert "real" in fired
        assert end == pytest.approx(1.0)

    def test_substantive_counts_are_exact_under_cancel(self, scheduler):
        handle = scheduler.call_at(1.0, lambda: None)
        assert scheduler.substantive_pending == 1
        handle.cancel()
        assert scheduler.substantive_pending == 0
        # Double-cancel must not corrupt the counter.
        handle.cancel()
        assert scheduler.substantive_pending == 0

    def test_cancel_after_fire_does_not_corrupt_counter(self, scheduler):
        handle = scheduler.call_at(1.0, lambda: None)
        scheduler.run()
        handle.cancel()
        assert scheduler.substantive_pending == 0

    def test_last_substantive_time_ignores_housekeeping(self, scheduler):
        scheduler.call_at(1.0, lambda: None)
        scheduler.call_at(4.0, lambda: None, housekeeping=True)
        scheduler.run(until=10.0)
        assert scheduler.last_event_time == pytest.approx(4.0)
        assert scheduler.last_substantive_event_time == pytest.approx(1.0)

    def test_next_substantive_time_skips_housekeeping(self, scheduler):
        scheduler.call_at(2.0, lambda: None, housekeeping=True)
        assert scheduler.next_substantive_time() is None
        scheduler.call_at(5.0, lambda: None)
        assert scheduler.next_substantive_time() == pytest.approx(5.0)

    def test_pending_by_name_groups_families(self, scheduler):
        scheduler.call_at(1.0, lambda: None, name="mrai:1:d")
        scheduler.call_at(2.0, lambda: None, name="mrai:2:d")
        scheduler.call_at(3.0, lambda: None, name="hold:1", housekeeping=True)
        scheduler.call_at(4.0, lambda: None)
        census = scheduler.pending_by_name()
        assert census["mrai"] == 2
        assert census["hold"] == 1
        assert census["<lambda>"] == 1  # unnamed events fall back to __name__


class TestSettle:
    def test_settle_lets_housekeeping_detections_fire(self, scheduler):
        """A detection armed on a housekeeping timer fires if it lands
        within the settle window after the last substantive event."""
        fired = []
        scheduler.call_at(1.0, lambda: None)
        scheduler.call_at(4.0, lambda: fired.append("detect"), housekeeping=True)
        scheduler.run(settle=5.0)
        assert fired == ["detect"]

    def test_settle_bounds_the_quiet_period(self, scheduler):
        fired = []
        scheduler.call_at(1.0, lambda: None)
        scheduler.call_at(20.0, lambda: fired.append("late"), housekeeping=True)
        scheduler.run(settle=5.0)
        # 20.0 > 1.0 + 5.0: the late heartbeat stays queued.
        assert fired == []

    def test_settle_resets_on_new_substantive_work(self, scheduler):
        """Housekeeping that spawns substantive work extends the run."""
        fired = []

        def detect():
            fired.append("detect")
            scheduler.call_after(1.0, lambda: fired.append("reaction"))

        scheduler.call_at(1.0, lambda: None)
        scheduler.call_at(4.0, detect, housekeeping=True)
        scheduler.call_at(9.0, lambda: fired.append("second"), housekeeping=True)
        scheduler.run(settle=5.0)
        # reaction at t=5 is substantive; quiet clock restarts there, so the
        # t=9 heartbeat is still inside the window.
        assert fired == ["detect", "reaction", "second"]


class TestHousekeepingTimers:
    def test_timer_housekeeping_flag_propagates(self, scheduler):
        timer = Timer(scheduler, callback=lambda: None, housekeeping=True)
        timer.start(3.0)
        assert scheduler.substantive_pending == 0
        timer2 = Timer(scheduler, callback=lambda: None)
        timer2.start(3.0)
        assert scheduler.substantive_pending == 1


class TestProcessorHousekeeping:
    def test_housekeeping_job_does_not_block_quiescence(self, scheduler):
        cpu = SerialProcessor(scheduler)
        done = []
        cpu.submit(1.0, lambda: done.append("hk"), housekeeping=True)
        assert scheduler.substantive_pending == 0
        scheduler.run(until=5.0)
        assert done == ["hk"]

    def test_substantive_behind_housekeeping_upgrades_in_service(self, scheduler):
        """A substantive job queued behind an in-service housekeeping job
        must keep the scheduler substantive-pending — the housekeeping
        completion event is what starts the substantive service slot."""
        cpu = SerialProcessor(scheduler)
        done = []
        cpu.submit(1.0, lambda: done.append("hk"), housekeeping=True)
        cpu.submit(1.0, lambda: done.append("real"))
        assert scheduler.substantive_pending > 0
        end = scheduler.run(max_events=10)
        assert done == ["hk", "real"]
        assert end == pytest.approx(2.0)

    def test_clear_drops_queue_and_in_service_job(self, scheduler):
        cpu = SerialProcessor(scheduler)
        done = []
        cpu.submit(1.0, lambda: done.append("a"))
        cpu.submit(1.0, lambda: done.append("b"))
        dropped = cpu.clear()
        assert dropped == 2
        assert cpu.jobs_dropped == 2
        scheduler.run(until=10.0)
        assert done == []
        assert not cpu.busy
        assert scheduler.substantive_pending == 0

    def test_processor_usable_after_clear(self, scheduler):
        cpu = SerialProcessor(scheduler)
        done = []
        cpu.submit(1.0, lambda: done.append("lost"))
        cpu.clear()
        cpu.submit(0.5, lambda: done.append("fresh"))
        scheduler.run()
        assert done == ["fresh"]
