"""Statistics over individual loops — the paper's "next steps".

§6: "As our next steps, we plan to examine route change traces to measure
the statistics of individual loops such as the loop size and duration."
This module does that measurement over the FIB-history loop intervals the
library already extracts: size and lifetime distributions, formation times
relative to the failure, per-node participation, and re-formation counts —
aggregable across runs for sweep-level statistics.

The numbers connect to the measurement literature the paper cites:
Hengartner et al. observed on a real backbone that more than half of all
loops involved only two nodes, and that loop lifetimes are heavy-tailed;
:class:`LoopStatistics` makes the same quantities available for simulated
convergence events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..errors import AnalysisError
from ..util.stats import Summary, summarize
from .loop_detector import LoopInterval


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0-100) by linear interpolation; raises on empty."""
    if not values:
        raise AnalysisError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise AnalysisError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


@dataclass
class LoopStatistics:
    """Aggregated statistics over a collection of loop lifetimes.

    Build with :meth:`from_intervals` for one run, or :meth:`merge` several
    runs' statistics into sweep-level aggregates.  ``failure_time`` anchors
    formation delays; when merging runs it is carried per interval, so pass
    intervals already shifted (or use per-run instances).
    """

    intervals: List[LoopInterval] = field(default_factory=list)
    formation_delays: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_intervals(
        cls,
        intervals: Sequence[LoopInterval],
        failure_time: float = 0.0,
    ) -> "LoopStatistics":
        """Statistics for one run's loop timeline."""
        return cls(
            intervals=list(intervals),
            formation_delays=[i.start - failure_time for i in intervals],
        )

    @classmethod
    def merge(cls, parts: Sequence["LoopStatistics"]) -> "LoopStatistics":
        """Pool several runs' statistics (e.g. across seeds)."""
        merged = cls()
        for part in parts:
            merged.intervals.extend(part.intervals)
            merged.formation_delays.extend(part.formation_delays)
        return merged

    # ------------------------------------------------------------------
    # Counts and distributions
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of loop lifetimes observed."""
        return len(self.intervals)

    def sizes(self) -> List[int]:
        return [interval.size for interval in self.intervals]

    def durations(self) -> List[float]:
        return [interval.duration for interval in self.intervals]

    def size_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for interval in self.intervals:
            histogram[interval.size] = histogram.get(interval.size, 0) + 1
        return histogram

    def two_node_share(self) -> float:
        """Fraction of loop lifetimes with exactly two members.

        Hengartner et al. report > 0.5 on a measured backbone; clique-heavy
        convergence events typically land in the same regime.
        """
        if not self.intervals:
            return 0.0
        return sum(1 for i in self.intervals if i.size == 2) / len(self.intervals)

    def duration_summary(self) -> Summary:
        """Mean/stdev/min/max of loop lifetimes."""
        return summarize(self.durations())

    def duration_percentile(self, q: float) -> float:
        return percentile(self.durations(), q)

    def formation_delay_summary(self) -> Summary:
        """How long after the failure loops form."""
        return summarize(self.formation_delays)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def node_participation(self) -> Dict[int, int]:
        """How many loop lifetimes each node took part in."""
        counts: Dict[int, int] = {}
        for interval in self.intervals:
            for node in interval.cycle:
                counts[node] = counts.get(node, 0) + 1
        return counts

    def most_looping_nodes(self, top: int = 5) -> List[Tuple[int, int]]:
        """``(node, lifetimes)`` pairs, most-implicated first."""
        counts = self.node_participation()
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]

    def reformation_counts(self) -> Dict[Tuple[int, ...], int]:
        """How many separate lifetimes each distinct cycle had.

        A count above 1 means the same loop died and re-formed — the §3.2
        remark that resolving one loop "could result in another (but
        different) loop" has a special case where it is the *same* one.
        """
        counts: Dict[Tuple[int, ...], int] = {}
        for interval in self.intervals:
            counts[interval.cycle] = counts.get(interval.cycle, 0) + 1
        return counts

    def total_loop_seconds(self) -> float:
        """Sum of all loop lifetimes (loop-seconds of exposure)."""
        return sum(self.durations())

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """A compact multi-line human-readable summary."""
        if not self.intervals:
            return "no loops observed"
        duration = self.duration_summary()
        lines = [
            f"loop lifetimes observed : {self.count}",
            f"two-node share          : {self.two_node_share():.0%}",
            f"lifetime mean/max       : {duration.mean:.2f}s / {duration.maximum:.2f}s",
            f"lifetime p50/p90        : {self.duration_percentile(50):.2f}s / "
            f"{self.duration_percentile(90):.2f}s",
            f"total loop-seconds      : {self.total_loop_seconds():.2f}s",
        ]
        sizes = ", ".join(
            f"{size}-node x{count}" for size, count in sorted(self.size_histogram().items())
        )
        lines.append(f"sizes                   : {sizes}")
        return "\n".join(lines)
