"""Prefix aggregation and deaggregation events.

Aggregation is the table-compression trick (DRAGON's core move): an origin
that announces 2^k specifics collapses them into one covering prefix, and
later re-splits.  Control-plane-wise both directions are just originations
and withdrawals; the interesting behavior is *transient*: while the
withdrawal of a specific races its cover's propagation, different routers
hold different mixes of cover and specific, and longest-prefix-match
forwarding (:class:`~repro.dataplane.fib.MultiPrefixFib`) over that mixed
state is where multi-prefix loops and blackholes live.

:func:`prefix_population` builds the seeded workload: ``count`` specifics
grouped into blocks of 2^``block_bits`` under distinct covers, each block
assigned to a (seeded) origin.  :func:`apply_aggregate` /
:func:`apply_deaggregate` drive one block through its transition
make-before-break: the replacement routes are originated before the old ones
are withdrawn, so steady states are always covered and every loop observed
is a genuine propagation transient.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple, TYPE_CHECKING

from ..errors import ConfigError
from ..prefixes import ADDRESS_BITS, PrefixSpec, parse_prefix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (speaker uses bgp.*)
    from .speaker import BgpSpeaker

DEFAULT_SPECIFIC_LENGTH = 24
"""Prefix length of the announced specifics (a /24, the Internet's modal
table entry)."""

DEFAULT_BLOCK_BITS = 2
"""Specifics per aggregate block = 2^block_bits (default: 4 per cover)."""


@dataclass(frozen=True)
class AggregateBlock:
    """One origin's aggregatable unit: a cover and its announced specifics.

    Plain strings and ints only, so blocks ride inside pickled scenario
    specs to sweep workers unchanged.
    """

    origin: int
    cover: str
    specifics: Tuple[str, ...]

    def __post_init__(self) -> None:
        cover_spec = parse_prefix(self.cover)
        if cover_spec is None:
            raise ConfigError(f"aggregate cover must be structured: {self.cover!r}")
        if not self.specifics:
            raise ConfigError(f"aggregate block for {self.cover!r} has no specifics")
        for specific in self.specifics:
            spec = parse_prefix(specific)
            if spec is None:
                raise ConfigError(f"specific must be structured: {specific!r}")
            if not cover_spec.covers(spec) or spec.length <= cover_spec.length:
                raise ConfigError(
                    f"{specific!r} is not a proper specific of {self.cover!r}"
                )

    @property
    def all_prefixes(self) -> Tuple[str, ...]:
        """Cover plus specifics (cover first)."""
        return (self.cover,) + self.specifics


def prefix_population(
    count: int,
    origins: Sequence[int],
    seed: int,
    block_bits: int = DEFAULT_BLOCK_BITS,
    specific_length: int = DEFAULT_SPECIFIC_LENGTH,
) -> List[AggregateBlock]:
    """A seeded population of ``count`` specifics in aggregatable blocks.

    Blocks are laid out at consecutive cover-aligned addresses (block ``i``
    owns cover ``i << (32 - cover_length)``), so the population is a pure
    function of its arguments; the seed drives only the origin assignment —
    each block goes to a uniformly drawn member of ``origins``.  The final
    block may be partial when ``count`` is not a multiple of the block size
    (its cover then over-covers, which is what real aggregates do anyway).
    """
    if count < 1:
        raise ConfigError(f"population count must be >= 1, got {count}")
    if not origins:
        raise ConfigError("population needs at least one origin")
    if block_bits < 1:
        raise ConfigError(f"block_bits must be >= 1, got {block_bits}")
    cover_length = specific_length - block_bits
    if cover_length < 0 or specific_length > ADDRESS_BITS:
        raise ConfigError(
            f"invalid geometry: /{specific_length} specifics with "
            f"{block_bits}-bit blocks"
        )
    block_size = 1 << block_bits
    block_count = (count + block_size - 1) // block_size
    if block_count > (1 << cover_length):
        raise ConfigError(
            f"{count} specifics need {block_count} /{cover_length} covers; "
            f"only {1 << cover_length} exist"
        )
    rng = random.Random(seed)
    ordered_origins = sorted(set(origins))
    blocks: List[AggregateBlock] = []
    remaining = count
    for index in range(block_count):
        cover = PrefixSpec(index << (ADDRESS_BITS - cover_length), cover_length)
        specifics = cover.split(block_bits)[: min(block_size, remaining)]
        remaining -= len(specifics)
        origin = ordered_origins[rng.randrange(len(ordered_origins))]
        blocks.append(
            AggregateBlock(
                origin=origin,
                cover=str(cover),
                specifics=tuple(str(s) for s in specifics),
            )
        )
    return blocks


def population_originations(
    blocks: Sequence[AggregateBlock],
) -> List[Tuple[int, str]]:
    """The steady-state (origin, specific) originations of a population."""
    pairs: List[Tuple[int, str]] = []
    for block in blocks:
        pairs.extend((block.origin, specific) for specific in block.specifics)
    return pairs


def apply_aggregate(speaker: "BgpSpeaker", block: AggregateBlock) -> None:
    """Collapse the block at its origin: announce the cover, pull specifics.

    Make-before-break: the cover is originated first so the steady state
    after convergence is fully covered; any looping observed is transient
    mixed-state forwarding, not a configuration hole.
    """
    if block.cover not in speaker.origins:
        speaker.originate(block.cover)
    for specific in block.specifics:
        if specific in speaker.origins:
            speaker.withdraw_origin(specific)


def apply_deaggregate(speaker: "BgpSpeaker", block: AggregateBlock) -> None:
    """Re-split the block at its origin: announce specifics, pull the cover."""
    for specific in block.specifics:
        if specific not in speaker.origins:
            speaker.originate(specific)
    if block.cover in speaker.origins:
        speaker.withdraw_origin(block.cover)
