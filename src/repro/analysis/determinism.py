"""The determinism harness: run a scenario twice, diff the trace digests.

The repository's reproducibility contract is that a run is a pure
function of ``(code, scenario, config, seed)``.  This module checks the
contract end to end: it executes the same experiment N times (default
twice) under one seed, reduces each run to a SHA-256 digest over
everything observable — the full control-plane message trace, the FIB
change log, and the summary metrics — and compares the digests.

Any divergence means nondeterminism crept past the static linter
(:mod:`repro.analysis.lint`): an unseeded draw, hash-order iteration on
an emission path, garbage-collection-dependent identity ordering.  The
report pinpoints the first trace record where two runs disagree.

Used by ``python -m repro determinism`` and the CI smoke check.
"""

from __future__ import annotations

import functools
import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..bgp import BgpConfig
from ..errors import AnalysisError
from ..experiments import RunSettings, Scenario, run_experiment

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from ..experiments.resilience import ResiliencePolicy


@dataclass(frozen=True)
class RunFingerprint:
    """One run reduced to comparable artifacts."""

    digest: str
    trace_lines: Tuple[str, ...]
    fib_lines: Tuple[str, ...]
    summary_line: str

    @property
    def messages(self) -> int:
        return len(self.trace_lines)

    @property
    def fib_changes(self) -> int:
        return len(self.fib_lines)


@dataclass(frozen=True)
class DeterminismReport:
    """The verdict of an N-fold dual-run comparison."""

    scenario_name: str
    seed: int
    fingerprints: Tuple[RunFingerprint, ...] = field(default_factory=tuple)

    @property
    def identical(self) -> bool:
        """True when every run produced the same digest."""
        digests = {fp.digest for fp in self.fingerprints}
        return len(digests) <= 1

    @property
    def digest(self) -> str:
        """The common digest (raises when runs diverged)."""
        if not self.identical:
            raise AnalysisError("runs diverged; there is no common digest")
        return self.fingerprints[0].digest

    def first_divergence(self) -> Optional[str]:
        """Where the first two differing runs part ways, or ``None``.

        Compares the baseline run against the first run with a different
        digest, line by line, across the trace, the FIB log, and the
        summary.
        """
        if self.identical:
            return None
        base = self.fingerprints[0]
        other = next(
            fp for fp in self.fingerprints[1:] if fp.digest != base.digest
        )
        for kind, a_lines, b_lines in (
            ("trace", base.trace_lines, other.trace_lines),
            ("fib", base.fib_lines, other.fib_lines),
            ("summary", (base.summary_line,), (other.summary_line,)),
        ):
            for index, (a, b) in enumerate(zip(a_lines, b_lines)):
                if a != b:
                    return (
                        f"{kind}[{index}]: run0={a!r} vs run1={b!r}"
                    )
            if len(a_lines) != len(b_lines):
                return (
                    f"{kind} length: run0 has {len(a_lines)} records, "
                    f"run1 has {len(b_lines)}"
                )
        return "digests differ but artifacts match (non-hashed state diverged)"

    def render(self) -> str:
        lines = [
            f"determinism check: {self.scenario_name} seed={self.seed} "
            f"runs={len(self.fingerprints)}"
        ]
        for index, fp in enumerate(self.fingerprints):
            lines.append(
                f"  run{index}: digest={fp.digest[:16]}… "
                f"messages={fp.messages} fib-changes={fp.fib_changes}"
            )
        if self.identical:
            lines.append("  IDENTICAL — bit-for-bit reproducible")
        else:
            lines.append(f"  DIVERGED — {self.first_divergence()}")
        return "\n".join(lines)


def fingerprint_run(run) -> RunFingerprint:
    """Reduce an :class:`~repro.experiments.runner.ExperimentRun`."""
    trace_lines = tuple(
        f"{record.time!r}|{record.src}|{record.dst}|{record.message!r}"
        for record in run.network.trace
    ) if run.network is not None else ()
    fib_lines = tuple(
        f"{change.time!r}|{change.node}|{change.prefix}|{change.next_hop}"
        for change in run.fib_log
    )
    summary = run.result.summary_row()
    summary_line = "|".join(
        f"{key}={summary[key]!r}" for key in sorted(summary)
    )
    hasher = hashlib.sha256()
    for line in trace_lines:
        hasher.update(line.encode())
        hasher.update(b"\n")
    hasher.update(b"--fib--\n")
    for line in fib_lines:
        hasher.update(line.encode())
        hasher.update(b"\n")
    hasher.update(b"--summary--\n")
    hasher.update(summary_line.encode())
    return RunFingerprint(
        digest=hasher.hexdigest(),
        trace_lines=trace_lines,
        fib_lines=fib_lines,
        summary_line=summary_line,
    )


def fingerprint_once(
    scenario: Scenario,
    config: BgpConfig,
    settings: RunSettings,
    seed: int,
) -> RunFingerprint:
    """One run reduced to its fingerprint; module-level so pool workers
    can execute repetitions of a parallel determinism check."""
    run = run_experiment(
        scenario, config, settings=settings, seed=seed, keep_network=True
    )
    return fingerprint_run(run)


def _constant_scenario(x: float, seed: int, scenario: Scenario = None) -> Scenario:
    """Module-level constant factory (picklable via ``functools.partial``)."""
    return scenario


def _constant_config(x: float, config: BgpConfig = None) -> BgpConfig:
    """Module-level constant factory (picklable via ``functools.partial``)."""
    return config


def _fingerprint_worker(task) -> RunFingerprint:
    """Supervised-executor worker: one repetition reduced to its digest."""
    scenario = task.make_scenario(task.x, task.seed)
    config = task.make_config(task.x)
    return fingerprint_once(scenario, config, task.settings, task.seed)


def check_determinism(
    scenario: Scenario,
    config: BgpConfig,
    settings: RunSettings = RunSettings(),
    seed: int = 0,
    runs: int = 2,
    jobs: int = 1,
    policy: Optional["ResiliencePolicy"] = None,
) -> DeterminismReport:
    """Run ``scenario`` ``runs`` times under one seed and diff the digests.

    ``settings.sanitize`` composes naturally: with it set, every run also
    executes under the full sanitizer suite, so the check covers both
    reproducibility and runtime invariants in one pass.

    ``jobs > 1`` (or ``0`` for one per CPU) strengthens the check: run 0
    executes in *this* process — the sequential baseline — while the
    remaining repetitions execute in pool worker processes.  Identical
    digests then certify that a trial is bit-identical whether it runs
    in-process or in a parallel-sweep worker, which is exactly the
    guarantee ``sweep(..., jobs=N)`` relies on.

    ``policy`` (with ``jobs > 1``) runs the worker repetitions under the
    supervised resilient executor instead of a bare pool: a worker killed
    mid-repetition is restarted and retried per the policy, and the
    digests must *still* match the in-process baseline — the strongest
    form of the retries-don't-perturb-determinism guarantee.  A
    repetition that exhausts its retries raises its final error (a
    determinism check cannot compare digests it never got).
    """
    if runs < 2:
        raise AnalysisError(f"a determinism check needs >= 2 runs, got {runs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise AnalysisError(f"jobs must be >= 0 (0 = one per CPU), got {jobs}")
    fingerprints: List[RunFingerprint] = []
    if jobs == 1:
        for _ in range(runs):
            fingerprints.append(
                fingerprint_once(scenario, config, settings, seed)
            )
    elif policy is not None:
        from ..experiments.resilience import run_tasks_supervised
        from ..experiments.sweep import TrialFailure, TrialTask

        fingerprints.append(fingerprint_once(scenario, config, settings, seed))
        tasks = [
            TrialTask(
                index=index,
                x=0.0,
                seed=seed,
                make_scenario=functools.partial(
                    _constant_scenario, scenario=scenario
                ),
                make_config=functools.partial(_constant_config, config=config),
                settings=settings,
            )
            for index in range(runs - 1)
        ]
        outcomes, _report = run_tasks_supervised(
            tasks, min(jobs, runs - 1), policy, worker_fn=_fingerprint_worker
        )
        for index in range(runs - 1):
            outcome = outcomes[index]
            if isinstance(outcome, TrialFailure):
                raise outcome.error
            fingerprints.append(outcome)
    else:
        fingerprints.append(fingerprint_once(scenario, config, settings, seed))
        with ProcessPoolExecutor(max_workers=min(jobs, runs - 1)) as pool:
            futures = [
                pool.submit(fingerprint_once, scenario, config, settings, seed)
                for _ in range(runs - 1)
            ]
            for future in futures:
                fingerprints.append(future.result())
    return DeterminismReport(
        scenario_name=scenario.name,
        seed=seed,
        fingerprints=tuple(fingerprints),
    )
