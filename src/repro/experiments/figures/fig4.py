"""Figure 4: overall looping duration vs convergence time across sizes.

Three panels: (a) Tdown in Cliques, (b) Tlong in B-Cliques, (c) Tdown in
Internet-derived topologies.  The paper's reading: looping persists through
(almost) the entire convergence period — the two curves nearly coincide for
Tdown, and differ by roughly one MRAI round (30-45 s) for Tlong.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...core import check_duration_coupling
from ...core.observations import check_tlong_gap
from ..config import RunSettings
from ..resilience import ResiliencePolicy
from ..report import FigureData
from ..scenarios import (
    bclique_tlong_trial,
    clique_tdown_trial,
    internet_tdown_trial,
)
from .common import metric_sweep_figure

_METRICS = ("looping_duration", "convergence_time")


def _with_coupling_check(figure: FigureData, max_gap_fraction: float) -> FigureData:
    figure.checks.append(
        check_duration_coupling(
            figure.series["looping_duration"],
            figure.series["convergence_time"],
            max_gap_fraction=max_gap_fraction,
        )
    )
    return figure


def figure4a(
    sizes: Sequence[int] = (5, 8, 11, 14),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Tdown in Clique topologies: looping duration ≈ convergence time."""
    figure, _points = metric_sweep_figure(
        "fig4a",
        "Tdown looping duration vs convergence time (Clique)",
        "clique_size",
        list(sizes),
        clique_tdown_trial,
        _METRICS,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    return _with_coupling_check(figure, max_gap_fraction=0.35)


def figure4b(
    sizes: Sequence[int] = (4, 6, 8, 10),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Tlong in B-Clique topologies: gap ≈ one MRAI round (30-45 s)."""
    figure, _points = metric_sweep_figure(
        "fig4b",
        "Tlong looping duration vs convergence time (B-Clique)",
        "bclique_size",
        list(sizes),
        bclique_tlong_trial,
        _METRICS,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    figure.checks.append(
        check_tlong_gap(
            figure.series["looping_duration"],
            figure.series["convergence_time"],
            mrai=mrai,
        )
    )
    return figure


def figure4c(
    sizes: Sequence[int] = (29, 48, 75, 110),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0, 1),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Tdown in Internet-derived topologies (paper sizes 29/48/75/110)."""
    figure, _points = metric_sweep_figure(
        "fig4c",
        "Tdown looping duration vs convergence time (Internet-derived)",
        "internet_size",
        list(sizes),
        internet_tdown_trial,
        _METRICS,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    return _with_coupling_check(figure, max_gap_fraction=0.6)
