"""Unit tests for repro.engine.rng."""

from repro.engine import RandomStreams


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(42).stream("x")
        b = RandomStreams(42).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_give_different_sequences(self):
        streams = RandomStreams(42)
        xs = [streams.stream("x").random() for _ in range(5)]
        ys = [streams.stream("y").random() for _ in range(5)]
        assert xs != ys

    def test_different_seeds_give_different_sequences(self):
        xs = [RandomStreams(1).stream("x").random() for _ in range(5)]
        ys = [RandomStreams(2).stream("x").random() for _ in range(5)]
        assert xs != ys

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_creation_order_does_not_matter(self):
        polluted = RandomStreams(7)
        polluted.stream("a")  # create an unrelated stream first
        with_sibling = polluted.stream("b").random()
        alone = RandomStreams(7).stream("b").random()
        assert with_sibling == alone


class TestSpawn:
    def test_spawn_derives_deterministic_child(self):
        a = RandomStreams(5).spawn("trial-1")
        b = RandomStreams(5).spawn("trial-1")
        assert a.seed == b.seed

    def test_spawn_children_differ(self):
        root = RandomStreams(5)
        assert root.spawn("trial-1").seed != root.spawn("trial-2").seed

    def test_child_differs_from_root(self):
        root = RandomStreams(5)
        assert root.spawn("x").seed != root.seed


class TestUniformHelper:
    def test_uniform_within_bounds(self):
        streams = RandomStreams(3)
        for _ in range(100):
            value = streams.uniform("proc", 0.1, 0.5)
            assert 0.1 <= value <= 0.5

    def test_seed_property(self):
        assert RandomStreams(9).seed == 9
