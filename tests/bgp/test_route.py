"""Unit tests for Route."""

import pytest

from repro.bgp import AsPath, Route, local_route


class TestValidation:
    def test_stored_path_must_start_at_next_hop(self):
        with pytest.raises(ValueError):
            Route(prefix="d", path=AsPath((5, 0)), next_hop=4)

    def test_non_local_route_needs_next_hop(self):
        with pytest.raises(ValueError):
            Route(prefix="d", path=AsPath((5, 0)), next_hop=None)

    def test_valid_learned_route(self):
        route = Route(prefix="d", path=AsPath((5, 0)), next_hop=5)
        assert not route.is_local
        assert route.hop_count == 2

    def test_local_route_helper(self):
        route = local_route("d")
        assert route.is_local
        assert route.hop_count == 0
        assert route.path.is_empty


class TestBehavior:
    def test_advertised_by_prepends(self):
        route = Route(prefix="d", path=AsPath((5, 0)), next_hop=5)
        assert route.advertised_by(7) == AsPath((7, 5, 0))

    def test_equality_ignores_learned_at(self):
        a = Route(prefix="d", path=AsPath((5, 0)), next_hop=5, learned_at=1.0)
        b = Route(prefix="d", path=AsPath((5, 0)), next_hop=5, learned_at=9.0)
        assert a == b

    def test_equality_respects_local_pref(self):
        a = Route(prefix="d", path=AsPath((5, 0)), next_hop=5, local_pref=100)
        b = Route(prefix="d", path=AsPath((5, 0)), next_hop=5, local_pref=200)
        assert a != b
