"""A RIP-like distance-vector speaker — the §2 baseline.

The paper positions path-vector routing against distance-vector routing:
"the poison reverse scheme in distance vector protocols, such as RIP, can
only detect 2-node routing loops", while BGP's full paths detect arbitrarily
long loops involving the receiver.  This module implements the baseline so
that claim is demonstrable with the library's own loop metrics: run the same
failure on :class:`RipSpeaker` networks with poison reverse on, and watch
3-node loops (and counting-to-infinity) that the path-vector speaker would
have avoided... and 2-node loops it correctly prevents.

Implementation notes:

* Triggered updates only (no periodic timer): metrics are event-driven just
  like the BGP speaker, which keeps convergence-time comparisons fair.
* Three loop-mitigation modes (:class:`DvMode`): plain Bellman-Ford,
  split horizon (never advertise a route back to its next hop), and poison
  reverse (advertise it back with an infinite metric).  The boolean
  ``poison_reverse`` parameter remains as a shorthand for the common pair.
* Metrics count AS hops, capped at :data:`INFINITY_METRIC` (16), at which
  point the route is flushed — the classic counting-to-infinity ceiling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..engine import RandomStreams, Scheduler
from ..errors import ConfigError, ProtocolError
from ..net import Node
from .messages import INFINITY_METRIC, DvUpdate

FibListener = Callable[[float, int, str, Optional[int]], None]


class DvMode(enum.Enum):
    """How a route is advertised toward its own next hop."""

    NONE = "none"                      # plain Bellman-Ford
    SPLIT_HORIZON = "split-horizon"    # say nothing toward the next hop
    POISON_REVERSE = "poison-reverse"  # say "unreachable" toward the next hop


@dataclass
class DvRoute:
    """The speaker's current route for one prefix."""

    metric: int
    next_hop: int  # the speaker's own id for a local origination

    @property
    def reachable(self) -> bool:
        return self.metric < INFINITY_METRIC


class RipSpeaker(Node):
    """An event-driven distance-vector router with optional poison reverse."""

    def __init__(
        self,
        node_id: int,
        scheduler: Scheduler,
        streams: RandomStreams,
        processing_delay: tuple = (0.1, 0.5),
        poison_reverse: bool = True,
        mode: Optional[DvMode] = None,
        fib_listener: Optional[FibListener] = None,
    ) -> None:
        rng = streams.stream(f"dv-processing:{node_id}")
        low, high = processing_delay

        def service_time() -> float:
            return rng.uniform(low, high)

        super().__init__(node_id, scheduler, service_time)
        if mode is None:
            mode = DvMode.POISON_REVERSE if poison_reverse else DvMode.NONE
        elif not isinstance(mode, DvMode):
            raise ConfigError(f"mode must be a DvMode, got {mode!r}")
        self.mode = mode
        self._routes: Dict[str, DvRoute] = {}
        # metric-as-heard per (neighbor, prefix): the DV analogue of the
        # Adj-RIB-In, needed to fail over without waiting for re-advertisement.
        self._heard: Dict[int, Dict[str, int]] = {}
        self._origins: set = set()
        self._fib_listener = fib_listener
        self.updates_sent = 0

    # ------------------------------------------------------------------

    def originate(self, prefix: str) -> None:
        """Start originating ``prefix`` at metric 0."""
        self._origins.add(prefix)
        self._reselect(prefix)

    def withdraw_origin(self, prefix: str) -> None:
        """Stop originating ``prefix`` (the Tdown trigger)."""
        if prefix not in self._origins:
            raise ProtocolError(f"node {self.node_id} does not originate {prefix!r}")
        self._origins.discard(prefix)
        self._reselect(prefix)

    def start(self) -> None:
        for prefix in sorted(self._origins):
            self._advertise(prefix)

    def route(self, prefix: str) -> Optional[DvRoute]:
        """The current route, or ``None`` when unreachable/unknown."""
        route = self._routes.get(prefix)
        if route is None or not route.reachable:
            return None
        return route

    def next_hop(self, prefix: str) -> Optional[int]:
        """FIB view compatible with the BGP speaker's encoding."""
        route = self.route(prefix)
        return route.next_hop if route else None

    # ------------------------------------------------------------------

    def handle_message(self, src: int, message) -> None:
        if not self.link_is_up(src):
            return
        if not isinstance(message, DvUpdate):
            raise ProtocolError(f"unexpected message {message!r} from {src}")
        self._heard.setdefault(src, {})[message.prefix] = message.metric
        self._reselect(message.prefix)

    def on_link_down(self, neighbor: int) -> None:
        affected = sorted(self._heard.pop(neighbor, {}))
        for prefix in affected:
            self._reselect(prefix)

    def on_link_up(self, neighbor: int) -> None:
        for prefix in sorted(self._routes):
            if self._routes[prefix].reachable:
                self._send_to(neighbor, prefix)

    # ------------------------------------------------------------------

    def _best_candidate(self, prefix: str) -> Optional[DvRoute]:
        if prefix in self._origins:
            return DvRoute(metric=0, next_hop=self.node_id)
        best: Optional[DvRoute] = None
        for neighbor in sorted(self._heard):
            if not self.link_is_up(neighbor):
                continue
            heard = self._heard[neighbor].get(prefix)
            if heard is None:
                continue
            metric = min(heard + 1, INFINITY_METRIC)
            if metric >= INFINITY_METRIC:
                continue
            if best is None or metric < best.metric:
                best = DvRoute(metric=metric, next_hop=neighbor)
        return best

    def _reselect(self, prefix: str) -> None:
        old = self._routes.get(prefix)
        new = self._best_candidate(prefix)
        if new is None:
            new = DvRoute(metric=INFINITY_METRIC, next_hop=self.node_id)
        if old == new:
            return
        self._routes[prefix] = new
        if self._fib_listener is not None:
            hop = new.next_hop if new.reachable else None
            self._fib_listener(self.scheduler.now, self.node_id, prefix, hop)
        self._advertise(prefix)

    def _advertise(self, prefix: str) -> None:
        for neighbor in self.neighbors:
            self._send_to(neighbor, prefix)

    def _send_to(self, neighbor: int, prefix: str) -> None:
        route = self._routes.get(prefix)
        if route is None:
            return
        metric = route.metric
        if route.reachable and route.next_hop == neighbor:
            if self.mode is DvMode.SPLIT_HORIZON:
                return  # say nothing toward the next hop
            if self.mode is DvMode.POISON_REVERSE:
                metric = INFINITY_METRIC
        self.send(neighbor, DvUpdate(prefix=prefix, metric=metric))
        self.updates_sent += 1
