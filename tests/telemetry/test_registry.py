"""Unit tests for repro.telemetry.registry."""

import pickle

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    DEFAULT_BUCKETS,
    GaugeSnapshot,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_REGISTRY,
    NullRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = MetricsRegistry().counter("a.b")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("a.b")
        with pytest.raises(TelemetryError, match="cannot decrease"):
            counter.inc(-1)


class TestGauge:
    def test_tracks_value_and_high_water(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(7.0)
        gauge.set(3.0)
        assert gauge.value == 3.0
        assert gauge.high_water == 7.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        hist = MetricsRegistry().histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 100.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 1, 1]  # <=1, <=10, overflow
        assert hist.count == 3
        assert hist.min == 0.5 and hist.max == 100.0
        assert hist.mean == pytest.approx(105.5 / 3)

    def test_empty_mean_is_zero(self):
        assert MetricsRegistry().histogram("h").mean == 0.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(TelemetryError, match="ascending"):
            MetricsRegistry().histogram("h", bounds=(5.0, 1.0))

    def test_default_bounds(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.bounds == DEFAULT_BUCKETS


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_name_cannot_change_kind(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.histogram("x")

    def test_snapshot_is_sorted_and_frozen(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(4.0)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert list(snap.counters) == ["a", "b"]
        assert snap.counter("a") == 1
        assert snap.counter("missing", default=9) == 9
        assert snap.gauges["g"] == GaugeSnapshot(value=4.0, high_water=4.0)
        assert snap.histograms["h"].count == 1
        assert not snap.empty

    def test_snapshot_pickles(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(2.0)
        snap = registry.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap


class TestAggregate:
    def two_snapshots(self):
        first = MetricsRegistry()
        first.counter("c").inc(2)
        first.gauge("g").set(5.0)
        first.histogram("h", bounds=(1.0, 10.0)).observe(0.5)
        second = MetricsRegistry()
        second.counter("c").inc(3)
        second.counter("only_second").inc(1)
        second.gauge("g").set(2.0)
        second.histogram("h", bounds=(1.0, 10.0)).observe(50.0)
        return first.snapshot(), second.snapshot()

    def test_counters_sum_and_names_union(self):
        combined = MetricsSnapshot.aggregate(self.two_snapshots())
        assert combined.counter("c") == 5
        assert combined.counter("only_second") == 1

    def test_gauges_keep_maximum(self):
        combined = MetricsSnapshot.aggregate(self.two_snapshots())
        assert combined.gauges["g"] == GaugeSnapshot(value=5.0, high_water=5.0)

    def test_histograms_merge_bucketwise(self):
        combined = MetricsSnapshot.aggregate(self.two_snapshots())
        merged = combined.histograms["h"]
        assert merged.bucket_counts == (1, 0, 1)
        assert merged.count == 2
        assert merged.min == 0.5 and merged.max == 50.0

    def test_mismatched_bounds_rejected(self):
        left = HistogramSnapshot(
            bounds=(1.0,), bucket_counts=(0, 0), count=0, total=0.0,
            min=None, max=None,
        )
        right = HistogramSnapshot(
            bounds=(2.0,), bucket_counts=(0, 0), count=0, total=0.0,
            min=None, max=None,
        )
        with pytest.raises(TelemetryError, match="cannot merge"):
            left.merged(right)

    def test_aggregate_of_nothing_is_empty(self):
        assert MetricsSnapshot.aggregate([]).empty


class TestRender:
    def test_lists_every_metric_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h").observe(1.0)
        text = registry.snapshot().render()
        assert "counter   c 1" in text
        assert "gauge     g value=2 high_water=2" in text
        assert "histogram h count=1" in text

    def test_empty_snapshot_says_so(self):
        assert "(no metrics recorded)" in MetricsSnapshot().render()


class TestNullRegistry:
    def test_writes_vanish(self):
        registry = NullRegistry()
        registry.counter("a").inc(10)
        registry.gauge("g").set(5.0)
        registry.histogram("h").observe(1.0)
        assert registry.snapshot().empty

    def test_shared_instruments_and_flag(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
