"""``repro.telemetry`` — simulation-wide metrics, timelines, and profiling.

Three layers with a strict determinism boundary:

* :mod:`~repro.telemetry.registry` — counters, gauges, histograms, and
  their frozen picklable snapshots; pure observation, no clocks.
* :mod:`~repro.telemetry.timeline` + :mod:`~repro.telemetry.probe` —
  simulation-time instants/spans and the hook object the simulator
  layers call; still purely deterministic.
* :mod:`~repro.telemetry.profiler` — wall-clock phase timing for the
  *harness* side only (the one lint-sanctioned wall-clock module).
"""

from .probe import TelemetryProbe, estimate_wire_size
from .profiler import PhaseProfiler, PhaseTiming, Stopwatch, time_callable, wall_time
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    GaugeSnapshot,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_REGISTRY,
    NullRegistry,
)
from .timeline import (
    GLOBAL_TRACK,
    Timeline,
    TimelineRecord,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "GLOBAL_TRACK",
    "Gauge",
    "GaugeSnapshot",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_REGISTRY",
    "NullRegistry",
    "PhaseProfiler",
    "PhaseTiming",
    "Stopwatch",
    "TelemetryProbe",
    "Timeline",
    "TimelineRecord",
    "estimate_wire_size",
    "time_callable",
    "validate_chrome_trace",
    "wall_time",
]
