"""Tests for route-change traces and path-exploration analysis."""

import pytest

from repro.bgp import AsPath, BgpConfig
from repro.core import ExplorationReport, RouteChange, RouteChangeLog
from repro.experiments import RunSettings, run_experiment, tdown_clique

P = "dest"


def path(*ases):
    return AsPath(ases)


@pytest.fixture
def log():
    log = RouteChangeLog()
    # Node 5 explores: (5 0) -> (5 6 0) -> (5 6 7 0) -> loss.
    log.record(0.0, 5, P, None, path(5, 0))
    log.record(10.0, 5, P, path(5, 0), path(5, 6, 0))
    log.record(20.0, 5, P, path(5, 6, 0), path(5, 6, 7, 0))
    log.record(30.0, 5, P, path(5, 6, 7, 0), None)
    # Node 6: one change, then a shortening.
    log.record(10.0, 6, P, None, path(6, 7, 0))
    log.record(15.0, 6, P, path(6, 7, 0), path(6, 0))
    # A different prefix: must not leak into P's report.
    log.record(12.0, 5, "other", None, path(5, 9))
    return log


class TestRouteChange:
    def test_flags(self):
        first = RouteChange(0.0, 1, P, None, path(1, 0))
        assert first.is_first_route and not first.is_loss
        loss = RouteChange(1.0, 1, P, path(1, 0), None)
        assert loss.is_loss and not loss.is_first_route
        grew = RouteChange(2.0, 1, P, path(1, 0), path(1, 2, 0))
        assert grew.lengthened
        shrank = RouteChange(3.0, 1, P, path(1, 2, 0), path(1, 0))
        assert not shrank.lengthened


class TestLogQueries:
    def test_filtering(self, log):
        assert len(log) == 7
        assert len(log.changes(prefix=P)) == 6
        assert len(log.changes(prefix=P, node=5)) == 4
        assert len(log.changes(prefix=P, since=15.0)) == 3


class TestExplorationReport:
    def test_depth_counts_distinct_paths(self, log):
        report = ExplorationReport.from_log(log, P)
        assert report.exploration_depth(5) == 3
        assert report.exploration_depth(6) == 2
        assert report.max_depth() == 3
        assert report.mean_depth() == pytest.approx(2.5)

    def test_lengthening_fraction(self, log):
        report = ExplorationReport.from_log(log, P)
        # Transitions: 5: (5 0)->(5 6 0) grew, (5 6 0)->(5 6 7 0) grew;
        # 6: (6 7 0)->(6 0) shrank.  Loss/first-route excluded.
        assert report.lengthening_fraction() == pytest.approx(2 / 3)

    def test_non_shortening_fraction(self, log):
        report = ExplorationReport.from_log(log, P)
        # The same three transitions; only node 6's shortened.
        assert report.non_shortening_fraction() == pytest.approx(2 / 3)

    def test_non_shortening_counts_equal_lengths(self):
        log = RouteChangeLog()
        log.record(0.0, 1, P, path(1, 2, 0), path(1, 3, 0))  # sidestep
        report = ExplorationReport.from_log(log, P)
        assert report.non_shortening_fraction() == 1.0
        assert report.lengthening_fraction() == 0.0

    def test_since_restricts_window(self, log):
        report = ExplorationReport.from_log(log, P, since=15.0)
        assert report.exploration_depth(5) == 1  # only (5 6 7 0)
        assert report.nodes() == [5, 6]

    def test_longest_path_explored(self, log):
        report = ExplorationReport.from_log(log, P)
        assert report.longest_path_explored() == 4

    def test_changes_per_node(self, log):
        report = ExplorationReport.from_log(log, P)
        assert report.changes_per_node() == {5: 4, 6: 2}

    def test_empty_report(self):
        report = ExplorationReport.from_log(RouteChangeLog(), P)
        assert report.max_depth() == 0
        assert report.mean_depth() == 0.0
        assert report.lengthening_fraction() == 0.0


class TestOnRealRun:
    @pytest.fixture(scope="class")
    def run(self):
        config = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
        return run_experiment(
            tdown_clique(6), config, RunSettings(failure_guard=0.5), seed=4
        )

    def test_tdown_exploration_never_shortens(self, run):
        report = ExplorationReport.from_log(
            run.route_log, "dest", since=run.failure_time
        )
        assert report.max_depth() >= 2
        # Tdown exploration may sidestep between equal-length obsolete
        # paths but never adopts a strictly shorter one.
        assert report.non_shortening_fraction() == 1.0
        assert report.lengthening_fraction() > 0.0

    def test_every_node_ends_with_a_loss(self, run):
        for node in run.scenario.topology.nodes:
            sequence = run.route_log.changes(
                prefix="dest", node=node, since=run.failure_time
            )
            assert sequence, f"node {node} logged no changes"
            assert sequence[-1].is_loss

    def test_warmup_changes_also_recorded(self, run):
        warmup = run.route_log.changes(prefix="dest")
        assert any(c.is_first_route for c in warmup)
