"""Measuring persistent oscillation — the loops that never die.

:func:`~repro.experiments.runner.run_experiment` *requires* quiescence: it
runs warm-up to completion before injecting the event, and a scenario that
never converges (BAD-GADGET has no stable state at all) would only ever
exhaust its budget there.  This module is the complementary driver for
exactly those scenarios: :func:`observe_oscillation` starts the network,
runs to a fixed simulation-time horizon *without* demanding quiescence,
and then classifies what it saw:

* ``converged`` — the scheduler went quiet before the horizon; every loop
  observed was transient (the paper's regime).
* ``persistent-oscillation`` — still scheduling substantive work at the
  horizon *and* update messages landed inside the trailing observation
  window: the protocol is live and churning, the stability literature's
  divergence regime.
* ``indeterminate`` — not quiescent but the tail window was silent
  (an MRAI round longer than the window, or a horizon too short to
  judge); re-run with a wider window before concluding anything.

The report carries the static analyzer's verdict for the same
``(scenario, policies)`` pair, so each dynamic measurement is
cross-checked against the dispute-wheel certificate in both directions:
a certified-SAFE scenario must classify ``converged``; a measured
``persistent-oscillation`` must come with a wheel (no wheel ⇒ safe ⇒
convergent).  The converse is deliberately *not* asserted — DISAGREE
carries a wheel yet converges under MRAI-staggered timing (it oscillates
only when lockstep timing keeps its two nodes phase-locked).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis.stability import StabilityReport, certify_scenario
from ..bgp import Announcement, BgpConfig, Withdrawal
from ..core import LoopInterval, loop_timeline
from ..dataplane import FibChangeLog
from ..engine import RandomStreams, Scheduler
from ..errors import SchedulingError
from .runner import build_network
from .unsafe import PolicyScenario

#: Default knobs sized for the 3-4 node gadgets.  MRAI is *disabled* by
#: default: with rate limiting on, BAD-GADGET's oscillation phase-locks
#: after the initial transient into a control-plane-only orbit (best
#: routes keep flipping but the forwarding graph never closes a cycle),
#: whereas with updates propagating freely the forwarding loop on the rim
#: re-forms continuously — the persistent *data-plane* loop this runner
#: exists to measure.  120 s of horizon is hundreds of oscillation
#: rounds, far beyond any transient.
DEFAULT_HORIZON = 120.0
DEFAULT_EVENT_BUDGET = 2_000_000


@dataclass
class OscillationReport:
    """What one fixed-horizon observation of a policy scenario saw."""

    name: str
    seed: int
    horizon: float
    window: float
    quiescent: bool
    last_activity: float
    updates_in_window: int
    total_messages: int
    classification: str
    loop_intervals: List[LoopInterval] = field(default_factory=list)
    persistent_loops: int = 0
    """Distinct loop lifetimes still open in the trailing window — loops
    that outlived the whole remaining observation, not transients."""
    budget_exhausted: bool = False
    stability: Optional[StabilityReport] = None
    """The static analyzer's verdict for the same scenario + policies."""

    @property
    def oscillating(self) -> bool:
        return self.classification == "persistent-oscillation"

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "horizon": self.horizon,
            "window": self.window,
            "classification": self.classification,
            "quiescent": self.quiescent,
            "updates_in_window": self.updates_in_window,
            "total_messages": self.total_messages,
            "loop_intervals": len(self.loop_intervals),
            "persistent_loops": self.persistent_loops,
            "budget_exhausted": self.budget_exhausted,
        }

    def render(self) -> str:
        lines = [
            f"{self.name} (seed {self.seed}): {self.classification} — "
            f"{self.total_messages} messages in {self.horizon:g}s, "
            f"{self.updates_in_window} updates in the final {self.window:g}s, "
            f"{len(self.loop_intervals)} loop interval(s), "
            f"{self.persistent_loops} persistent"
        ]
        if self.stability is not None:
            lines.append(
                f"  static verdict: {self.stability.verdict.value.upper()} "
                f"[{self.stability.method}]"
            )
        return "\n".join(lines)


def observe_oscillation(
    policy_scenario: PolicyScenario,
    config: Optional[BgpConfig] = None,
    horizon: float = DEFAULT_HORIZON,
    window: Optional[float] = None,
    seed: int = 0,
    event_budget: int = DEFAULT_EVENT_BUDGET,
    certify: bool = True,
) -> OscillationReport:
    """Run ``policy_scenario`` from cold start to ``horizon`` and classify.

    Unlike the experiment runner there is no warm-up/event split: the
    origin announces at t=0 and the simulation simply runs.  (The gadget
    scenarios carry a nominal event kind for :class:`Scenario` validity,
    but divergence — when present — begins with the very first
    announcement wave, so no event is injected here.)

    ``window`` is the trailing observation window for the liveness test;
    it defaults to three MRAI rounds (at least 5 s) so one quiet MRAI gap
    is never mistaken for convergence.
    """
    active = config or BgpConfig(mrai=0.0, processing_delay=(0.01, 0.05))
    if window is None:
        window = max(5.0, 3.0 * active.mrai)
    scenario = policy_scenario.scenario
    streams = RandomStreams(seed)
    scheduler = Scheduler()
    fib_log = FibChangeLog()
    network = build_network(
        scenario,
        active,
        streams,
        scheduler,
        fib_log,
        policy_factory=policy_scenario.policy_factory,
    )
    network.start()
    budget_exhausted = False
    try:
        scheduler.run(until=horizon, max_events=event_budget)
    except SchedulingError:
        budget_exhausted = True

    quiescent = not budget_exhausted and scheduler.next_substantive_time() is None
    last_activity = scheduler.last_substantive_event_time or 0.0
    window_start = horizon - window
    updates_in_window = network.trace.count(
        lambda r: r.time >= window_start
        and isinstance(r.message, (Announcement, Withdrawal))
    )
    intervals = loop_timeline(fib_log, scenario.prefix, 0.0, scheduler.now)
    persistent = sum(1 for iv in intervals if iv.end >= window_start)

    if quiescent:
        classification = "converged"
    elif updates_in_window > 0:
        classification = "persistent-oscillation"
    else:
        classification = "indeterminate"

    stability = None
    if certify:
        stability = certify_scenario(
            scenario, policy_factory=policy_scenario.policy_factory
        )

    return OscillationReport(
        name=scenario.name,
        seed=seed,
        horizon=horizon,
        window=window,
        quiescent=quiescent,
        last_activity=last_activity,
        updates_in_window=updates_in_window,
        total_messages=len(network.trace),
        classification=classification,
        loop_intervals=intervals,
        persistent_loops=persistent,
        budget_exhausted=budget_exhausted,
        stability=stability,
    )
