"""Unit tests for repro.util.stats."""

import pytest

from repro.errors import AnalysisError
from repro.util import (
    coefficient_of_variation,
    linear_fit,
    mean,
    median,
    stdev,
    summarize,
)


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(AnalysisError):
            mean([])

    def test_stdev(self):
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)

    def test_stdev_short_input(self):
        assert stdev([5]) == 0.0

    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5

    def test_median_empty(self):
        with pytest.raises(AnalysisError):
            median([])

    def test_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        assert coefficient_of_variation([0, 0]) == 0.0
        assert coefficient_of_variation([1, 3]) > 0.5


class TestLinearFit:
    def test_perfect_line(self):
        fit = linear_fit([1, 2, 3], [3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.is_strongly_linear
        assert fit.predict(10) == pytest.approx(21.0)

    def test_constant_ys(self):
        fit = linear_fit([1, 2, 3], [4, 4, 4])
        assert fit.slope == 0.0
        assert fit.r_squared == 1.0

    def test_noisy_data_reduces_r_squared(self):
        fit = linear_fit([1, 2, 3, 4], [1, 5, 2, 6])
        assert fit.r_squared < 0.9
        assert not fit.is_strongly_linear

    def test_degenerate_inputs(self):
        with pytest.raises(AnalysisError):
            linear_fit([1], [1])
        with pytest.raises(AnalysisError):
            linear_fit([2, 2], [1, 3])
        with pytest.raises(AnalysisError):
            linear_fit([1, 2], [1])


class TestSummary:
    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert "n=3" in str(summary)

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            summarize([])
