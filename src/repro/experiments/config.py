"""Run-level settings shared by every experiment.

:class:`RunSettings` covers the simulator knobs that are *not* part of the
protocol variant (those live in :class:`~repro.bgp.config.BgpConfig`): the
traffic model, TTL, and engine safety budgets.  Defaults are the paper's
values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataplane import DEFAULT_PACKET_RATE, DEFAULT_TTL
from ..errors import ConfigError


@dataclass(frozen=True)
class RunSettings:
    """Everything about a run other than topology, event, and protocol.

    Attributes
    ----------
    packet_rate:
        Packets per second per source AS (paper: 10).
    ttl:
        Initial TTL (paper: 128).
    failure_guard:
        Seconds of quiet between warm-up quiescence and the injected
        failure, so the failure timestamp is unambiguous in traces.
    event_budget:
        Hard cap on post-failure events; a protocol bug that prevents
        convergence fails loudly instead of hanging.
    horizon:
        Hard wall-clock (simulated) limit for the post-failure phase.
    sanitize:
        Run under the full runtime sanitizer suite (causality, FIFO,
        RIB coherence — see :mod:`repro.analysis.sanitizers`).  Off by
        default; flows through sweeps unchanged, so any scenario family
        can be swept sanitized.
    telemetry:
        Install a :class:`~repro.telemetry.probe.TelemetryProbe` for the
        run and attach its :class:`~repro.telemetry.registry.
        MetricsSnapshot` to the returned
        :class:`~repro.experiments.runner.ExperimentRun`.  Purely
        observational: determinism digests are identical on or off.
    timeline:
        Additionally record a simulation-time
        :class:`~repro.telemetry.timeline.Timeline` (instants and spans,
        exportable as JSONL or Chrome trace JSON).  Implies ``telemetry``
        behavior for the probe; off by default because traced runs hold
        every FIB-change/MRAI instant in memory.
    certify:
        Statically certify the scenario's policy stability (dispute-wheel
        search / structural safety, see :mod:`repro.analysis.stability`)
        before simulating, and attach the
        :class:`~repro.analysis.stability.StabilityReport` to the
        returned run as provenance.  Purely static — zero events are
        scheduled by certification, and the verdict is outside the
        determinism fingerprint, so digests are identical on or off.
    traffic_matrix:
        Evaluate a seeded traffic matrix (one CBR weight per
        (source, prefix), see :class:`~repro.dataplane.traffic.
        TrafficMatrix`) over the measurement window with
        longest-prefix-match forwarding, and attach the resulting
        :class:`~repro.dataplane.traffic_eval.TrafficReport` to the run's
        :class:`~repro.core.loop_metrics.LoopStudyResult`.  This adds the
        traffic-weighted loop metrics to ``summary_row()`` (and hence the
        fingerprint), so it defaults off: single-prefix digests are
        bit-identical unless a scenario opts in.
    traffic_epoch_rows:
        Collect per-epoch :class:`~repro.dataplane.traffic_eval.
        EpochTraffic` rows in the traffic report.  One whole-matrix
        accounting pass per constant-fate segment — O(segments × flows),
        quadratic in population at routing-table scale — so large
        populations turn it off.  The report *totals* (and every summary
        fraction, hence the fingerprint) are bit-identical either way;
        only ``epoch_rows`` detail is skipped.
    """

    packet_rate: float = DEFAULT_PACKET_RATE
    ttl: int = DEFAULT_TTL
    failure_guard: float = 1.0
    event_budget: int = 5_000_000
    horizon: float = 50_000.0
    sanitize: bool = False
    telemetry: bool = False
    timeline: bool = False
    certify: bool = False
    traffic_matrix: bool = False
    traffic_epoch_rows: bool = True

    def __post_init__(self) -> None:
        if self.packet_rate <= 0:
            raise ConfigError(f"packet_rate must be positive: {self.packet_rate}")
        if self.ttl < 1:
            raise ConfigError(f"ttl must be >= 1: {self.ttl}")
        if self.failure_guard < 0:
            raise ConfigError(f"failure_guard must be >= 0: {self.failure_guard}")
        if self.event_budget < 1:
            raise ConfigError(f"event_budget must be >= 1: {self.event_budget}")
        if self.horizon <= 0:
            raise ConfigError(f"horizon must be positive: {self.horizon}")
