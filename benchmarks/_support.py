"""Shared plumbing for the figure benchmarks.

Each benchmark regenerates one paper figure through its driver, saves the
rendered series table under ``benchmarks/results/``, records headline
numbers in the pytest-benchmark ``extra_info``, and asserts the figure's
shape checks.  EXPERIMENTS.md is written from these result files.

Two extras support long parallel studies:

* :func:`checkpointed_sweep` is now a thin shim over the library's
  crash-safe journal (:func:`repro.experiments.checkpointed_sweep`):
  every finished *trial* is durably appended (CRC-checked, fsync'd) to
  ``results/<name>.trials.jsonl``, and a rerun only executes the
  ``(x, seed)`` pairs it is missing.  An interrupted sweep therefore
  *resumes* instead of silently re-running hours of finished trials from
  scratch — and survives ``kill -9``, not just polite interrupts.  (The
  pre-library ``<name>.points.jsonl`` format is no longer read; those
  sweeps re-run once.)
* :func:`bench_cli` gives a benchmark module a ``python bench_x.py
  --jobs N`` entry point that times its figure drivers under the parallel
  sweep executor and prints the wall-clock per figure — the quickest way
  to see the speedup (or, on tiny topologies, the worker-startup cost).

Committed vs machine-written results
------------------------------------

``benchmarks/results/`` holds two kinds of file with different ownership:

* **Committed** — the rendered ``*.txt`` figure tables that
  :func:`save_figure` writes.  EXPERIMENTS.md is generated from these;
  refreshing one is a reviewed change.
* **Machine-written** (gitignored) — per-machine state no commit should
  carry: sweep trial journals (``*.trials.jsonl``, and the retired
  ``*.points.jsonl``), the continuous-bench perf trajectory
  (``perf_trajectory.jsonl``), and the candidate bench documents the
  service gates (``CANDIDATE_*.json``).

Timing *baselines* never live here at all: the JSON documents that
``compare_baselines.py`` gates against are committed under
``benchmarks/baselines/`` and refreshed deliberately (see README).
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def save_figure(figure) -> Path:
    """Write the figure's rendered table to benchmarks/results/<id>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{figure.figure_id}.txt"
    path.write_text(figure.render() + "\n", encoding="utf-8")
    return path


def record(benchmark, figure, require_checks: bool = True) -> None:
    """Attach the figure's data to the benchmark record and save it.

    ``require_checks=False`` records check outcomes without failing the
    benchmark — used where the paper's claim is known not to reproduce on
    synthetic topologies (documented in EXPERIMENTS.md).
    """
    save_figure(figure)
    benchmark.extra_info["figure"] = figure.figure_id
    benchmark.extra_info["xs"] = list(figure.xs)
    for name, values in figure.series.items():
        benchmark.extra_info[name] = [round(v, 3) for v in values]
    benchmark.extra_info["checks"] = [str(check) for check in figure.checks]
    print()
    print(figure.render())
    if require_checks:
        failures = figure.check_failures()
        assert not failures, "; ".join(str(f) for f in failures)


# ----------------------------------------------------------------------
# Incremental (resumable) sweeps
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PointRecord:
    """One sweep point's journaled trials, aggregated for table rendering."""

    x: float
    succeeded: int
    failed: int
    metrics: Dict[str, float]

    @classmethod
    def from_summary(cls, summary) -> "PointRecord":
        """From a library :class:`repro.experiments.PointSummary`."""
        return cls(
            x=summary.x,
            succeeded=summary.succeeded,
            failed=summary.failed,
            metrics=dict(summary.metrics),
        )


def point_journal_path(name: str) -> Path:
    """Where :func:`checkpointed_sweep` journals trials for ``name``."""
    return RESULTS_DIR / f"{name}.trials.jsonl"


def load_point_journal(path: Path) -> Dict[float, PointRecord]:
    """Completed points from a previous (possibly interrupted) run.

    Thin wrapper over :class:`repro.experiments.SweepJournal`: corrupt
    records and a torn final line are skipped by the library loader, so
    the journal is always safe to resume from.  Trials aggregate per x.
    """
    from repro.experiments import SweepJournal
    from repro.experiments.journal import summarize_point

    records, _recovery = SweepJournal(path).load()
    by_x: Dict[float, list] = {}
    for record_ in records.values():
        by_x.setdefault(record_.x, []).append(record_)
    return {
        x: PointRecord.from_summary(summarize_point(x, trials))
        for x, trials in sorted(by_x.items())
    }


def checkpointed_sweep(
    name: str,
    xs: Sequence[float],
    make_scenario,
    make_config,
    *,
    seeds: Sequence[int] = (0,),
    settings=None,
    jobs: int = 1,
    fresh: bool = False,
    path: Optional[Path] = None,
    on_trial_error=None,
    policy=None,
) -> List[PointRecord]:
    """A sweep that journals each finished trial and resumes on rerun.

    Thin shim over :func:`repro.experiments.checkpointed_sweep` (which
    owns the durability semantics: per-record CRC, fsync'd appends,
    atomic checkpoint compaction, SIGTERM/SIGINT-safe finalization).
    ``fresh=True`` discards the journal first; ``policy`` threads a
    :class:`repro.experiments.ResiliencePolicy` through to the sweep.
    Returns records for every x in request order; a point whose trials
    all failed reports ``metrics == {}`` rather than raising, so one
    dead point cannot wedge the resume loop.
    """
    from repro.experiments import checkpointed_sweep as journaled_sweep

    journal = path if path is not None else point_journal_path(name)
    journal.parent.mkdir(exist_ok=True)
    summaries = journaled_sweep(
        xs,
        make_scenario,
        make_config,
        journal=journal,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
        fresh=fresh,
        on_trial_error=on_trial_error,
    )
    return [PointRecord.from_summary(summary) for summary in summaries]


# ----------------------------------------------------------------------
# Direct bench entry points (python bench_x.py --jobs N)
# ----------------------------------------------------------------------


def bench_cli(
    drivers: Dict[str, Callable[[int], object]],
    argv: Optional[Sequence[str]] = None,
    description: str = "Run figure drivers and report wall-clock time.",
) -> int:
    """Argparse front end shared by the ``__main__`` blocks of bench files.

    ``drivers`` maps a figure id to ``fn(jobs) -> FigureData``.  Each
    requested driver runs once under the given ``--jobs`` and prints its
    table plus the wall-clock seconds, so ``--jobs 4`` vs ``--jobs 1`` is a
    direct speedup measurement.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "figures", nargs="*", choices=[[], *sorted(drivers)],
        help="figure ids to run (default: all)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep trials (0 = one per CPU)",
    )
    args = parser.parse_args(argv)
    chosen = args.figures or sorted(drivers)

    total = 0.0
    for figure_id in chosen:
        start = time.perf_counter()
        figure = drivers[figure_id](args.jobs)
        elapsed = time.perf_counter() - start
        total += elapsed
        save_figure(figure)
        print(figure.render())
        print(f"[{figure_id}] wall-clock {elapsed:.2f}s (jobs={args.jobs})")
        print()
    print(f"total wall-clock {total:.2f}s for {len(chosen)} figure(s) "
          f"with --jobs {args.jobs}")
    return 0
