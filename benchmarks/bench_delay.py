"""Extension study: convergence detours delay the packets that survive.

Hengartner et al. (cited in §2) measured that packets which "encountered
and escaped a loop were delayed by an additional 25 to 1300 msec".  The
library tracks delivered-packet hop counts in both data-plane engines;
this benchmark compares the delivered-hop distribution during a Tlong
convergence against the steady state after it, converting hops to delay via
the 2 ms link latency.
"""

from _support import RESULTS_DIR

from repro.bgp import BgpConfig
from repro.dataplane import EpochEvaluator, sources_for
from repro.experiments import RunSettings, run_experiment, tlong_bclique
from repro.topology import DEFAULT_LINK_DELAY
from repro.util import render_table

STEADY_WINDOW = 60.0


def measure(seed=0):
    scenario = tlong_bclique(6)
    run = run_experiment(
        scenario, BgpConfig.standard(30.0), RunSettings(), seed=seed
    )
    sources = sources_for(
        scenario.topology.nodes, scenario.destination, rate=10.0
    )
    evaluator = EpochEvaluator(run.fib_log, scenario.prefix, sources)
    convergence_end = run.result.convergence.convergence_end
    during = evaluator.evaluate(run.failure_time, convergence_end)
    after = evaluator.evaluate(convergence_end, convergence_end + STEADY_WINDOW)
    return during, after


def test_convergence_detour_delay(benchmark):
    during, after = benchmark.pedantic(measure, rounds=1, iterations=1)
    to_ms = DEFAULT_LINK_DELAY * 1000.0
    rows = [
        [
            "during convergence",
            during.delivered,
            during.mean_delivered_hops,
            during.mean_delivered_hops * to_ms,
            during.max_delivered_hops(),
        ],
        [
            "steady state after",
            after.delivered,
            after.mean_delivered_hops,
            after.mean_delivered_hops * to_ms,
            after.max_delivered_hops(),
        ],
    ]
    table = render_table(
        ["phase", "delivered", "mean_hops", "mean_delay_ms", "max_hops"],
        rows,
        title="Delivered-packet path stretch, Tlong B-Clique-6",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "detour_delay.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)

    assert after.delivered > 0 and during.delivered > 0
    # Post-failure steady state uses the long backup chain, so compare
    # maxima and spread rather than raw means: during convergence some
    # packets take strictly longer trajectories than any steady-state path.
    assert during.max_delivered_hops() >= after.max_delivered_hops()
    # And nothing in steady state loops.
    assert after.ttl_exhaustions == 0
