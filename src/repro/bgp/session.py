"""The BGP session layer: keepalives and hold timers.

The paper's failure model is interface-level: the nodes adjacent to a
failed link react instantly.  Real BGP also has a slower detection path —
a *silent* failure (one that the interface does not report) is noticed only
when no message arrives from the peer for a full hold time (keepalives are
sent at a third of it, per RFC 1771's recommended ratio).

:class:`SessionManager` implements exactly that per-neighbor machinery for
a speaker: an inbound hold timer reset by every received message, and an
outbound keepalive schedule.  Detection latency becomes a first-class
experimental variable — the ``bench_detection`` benchmark measures how the
hold time stretches routing inconsistency and therefore transient looping.

Scope notes:

* Session *establishment* is implicit (adjacent speakers are configured
  peers, as in the paper); there is no OPEN handshake.  After a hold-timer
  expiry the session stays down until the network layer reports the link
  up again.
* Session mode keeps keepalive timers armed indefinitely, so it is meant
  for horizon-driven simulations (``scheduler.run(until=...)``), not the
  run-to-quiescence experiment harness.
"""

from __future__ import annotations

from typing import Callable, Dict, Set

from ..engine import Scheduler, Timer
from ..errors import ConfigError

SendKeepalive = Callable[[int], None]
SessionDown = Callable[[int], None]


class SessionManager:
    """Per-neighbor hold/keepalive timers for one speaker.

    Parameters
    ----------
    scheduler:
        The simulation scheduler.
    hold_time:
        Seconds of silence after which a peer is declared dead.
    keepalive_interval:
        Spacing of outbound keepalives (must be < hold_time; RFC suggests
        a third).
    send_keepalive:
        ``callback(neighbor)`` that transmits a keepalive (the speaker
        guards physical link state).
    on_session_down:
        ``callback(neighbor)`` invoked when the hold timer expires; the
        speaker purges the neighbor's routes exactly as for a link-down.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        hold_time: float,
        keepalive_interval: float,
        send_keepalive: SendKeepalive,
        on_session_down: SessionDown,
    ) -> None:
        if hold_time <= 0:
            raise ConfigError(f"hold_time must be positive, got {hold_time}")
        if not 0 < keepalive_interval < hold_time:
            raise ConfigError(
                f"keepalive_interval must be in (0, hold_time), got "
                f"{keepalive_interval} vs {hold_time}"
            )
        self._scheduler = scheduler
        self._hold_time = hold_time
        self._keepalive_interval = keepalive_interval
        self._send_keepalive = send_keepalive
        self._on_session_down = on_session_down
        self._hold_timers: Dict[int, Timer] = {}
        self._keepalive_timers: Dict[int, Timer] = {}
        self._established: Set[int] = set()
        self.sessions_lost = 0

    # ------------------------------------------------------------------

    def established(self, neighbor: int) -> bool:
        """True while the session to ``neighbor`` is considered alive."""
        return neighbor in self._established

    @property
    def established_count(self) -> int:
        return len(self._established)

    # ------------------------------------------------------------------

    def establish(self, neighbor: int) -> None:
        """Bring the session up and start both timers (idempotent)."""
        if neighbor in self._established:
            return
        self._established.add(neighbor)
        hold = self._hold_timers.get(neighbor)
        if hold is None:
            hold = Timer(
                self._scheduler,
                callback=lambda n=neighbor: self._hold_expired(n),
                name=f"hold:{neighbor}",
            )
            self._hold_timers[neighbor] = hold
        hold.restart(self._hold_time)

        keepalive = self._keepalive_timers.get(neighbor)
        if keepalive is None:
            keepalive = Timer(
                self._scheduler,
                callback=lambda n=neighbor: self._keepalive_due(n),
                name=f"keepalive:{neighbor}",
            )
            self._keepalive_timers[neighbor] = keepalive
        keepalive.restart(self._keepalive_interval)

    def message_received(self, neighbor: int) -> None:
        """Any message from the peer proves liveness: refresh its hold."""
        if neighbor in self._established:
            self._hold_timers[neighbor].restart(self._hold_time)

    def teardown(self, neighbor: int) -> None:
        """Stop tracking the peer (link-down notification or hold expiry)."""
        self._established.discard(neighbor)
        hold = self._hold_timers.get(neighbor)
        if hold is not None:
            hold.cancel()
        keepalive = self._keepalive_timers.get(neighbor)
        if keepalive is not None:
            keepalive.cancel()

    def teardown_all(self) -> None:
        """Cancel every timer (end of a manually-driven simulation)."""
        for neighbor in list(self._established):
            self.teardown(neighbor)

    # ------------------------------------------------------------------

    def _hold_expired(self, neighbor: int) -> None:
        self.sessions_lost += 1
        self.teardown(neighbor)
        self._on_session_down(neighbor)

    def _keepalive_due(self, neighbor: int) -> None:
        if neighbor not in self._established:
            return
        self._send_keepalive(neighbor)
        self._keepalive_timers[neighbor].restart(self._keepalive_interval)
