"""Unit tests for ASCII table rendering."""

import pytest

from repro.util import format_cell, render_series, render_table


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(1.23456) == "1.23"
        assert format_cell(1.23456, precision=4) == "1.2346"

    def test_none_blank(self):
        assert format_cell(None) == "-"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["n", "time"], [[5, 1.5], [10, 3.25]])
        lines = text.splitlines()
        assert lines[0] == "n  | time"
        assert lines[1] == "---+-----"
        assert lines[2] == "5  | 1.50"
        assert lines[3] == "10 | 3.25"

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table\n========")

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_wide_cell_expands_column(self):
        text = render_table(["x"], [["a-very-long-value"]])
        assert "a-very-long-value" in text


class TestRenderSeries:
    def test_series_layout(self):
        text = render_series(
            "mrai", [5, 10], [("conv", [1.0, 2.0]), ("loop", [0.5, 1.5])]
        )
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "mrai"
        assert "conv" in lines[0] and "loop" in lines[0]
        assert len(lines) == 4

    def test_misaligned_series_rejected(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2], [("bad", [1.0])])
