"""Continuous benchmarking against a stub bench directory.

The stub directory carries a tiny bench script that honors the real
``--repeat``/``--output`` contract plus the *real* ``compare_baselines.py``
(copied in), so the gating path exercised here is the one CI and the
daemon run — only the measured workload is fake.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.service import (
    JobSpec,
    JobView,
    ServiceState,
    execute_job,
)
from repro.service.bench import (
    BenchCycle,
    BenchTarget,
    TargetResult,
    TrajectoryStore,
    current_commit,
    run_bench_cycle,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

STUB_SCRIPT = """\
import argparse, json

parser = argparse.ArgumentParser()
parser.add_argument("--repeat", type=int, default=1)
parser.add_argument("--output", required=True)
args = parser.parse_args()
assert args.repeat >= 1
document = {
    "schema": 1,
    "results": {
        "stub": {"wall_clock_s": 0.05, "updates": 100, "updates_per_s": 2000.0}
    },
}
with open(args.output, "w") as handle:
    json.dump(document, handle)
"""


def baseline_document(wall: float) -> dict:
    return {
        "schema": 1,
        "results": {
            "stub": {"wall_clock_s": wall, "updates": 100, "updates_per_s": 1.0}
        },
    }


@pytest.fixture
def bench_dir(tmp_path) -> Path:
    """A stub benchmarks/ directory with a matching baseline (wall 0.05)."""
    stub = tmp_path / "benchmarks"
    (stub / "baselines").mkdir(parents=True)
    (stub / "bench_stub.py").write_text(STUB_SCRIPT)
    (stub / "baselines" / "BENCH_stub.json").write_text(
        json.dumps(baseline_document(0.05))
    )
    shutil.copy(REPO_ROOT / "benchmarks" / "compare_baselines.py", stub)
    return stub


STUB_TARGET = BenchTarget(
    name="stub",
    script="bench_stub.py",
    baseline="baselines/BENCH_stub.json",
)


class TestRunBenchCycle:
    def test_matching_baseline_passes(self, bench_dir):
        messages = []
        cycle = run_bench_cycle(
            targets=[STUB_TARGET], bench_dir=bench_dir, publish=messages.append
        )
        assert cycle.ok
        [result] = cycle.results
        assert result.name == "stub"
        assert result.regressions == 0
        assert result.wall_clock_s == {"stub": 0.05}
        assert any("0 regression(s)" in message for message in messages)

        # The cycle landed in the trajectory with provenance attached.
        [record] = TrajectoryStore(
            bench_dir / "results" / "perf_trajectory.jsonl"
        ).records()
        assert record["target"] == "stub"
        assert record["ok"] is True
        assert record["commit"]

    def test_regression_fails_cycle(self, bench_dir):
        (bench_dir / "baselines" / "BENCH_stub.json").write_text(
            json.dumps(baseline_document(0.001))  # stub reports 0.05 → 50x
        )
        cycle = run_bench_cycle(targets=[STUB_TARGET], bench_dir=bench_dir)
        assert not cycle.ok
        [result] = cycle.results
        assert result.regressions == 1
        assert not result.error  # the bench ran fine; the gate said no
        [record] = TrajectoryStore(
            bench_dir / "results" / "perf_trajectory.jsonl"
        ).records()
        assert record["ok"] is False and record["regressions"] == 1

    def test_unknown_target_name_rejected(self, bench_dir):
        with pytest.raises(ServiceError, match="unknown bench target"):
            run_bench_cycle(targets=["mystery"], bench_dir=bench_dir)

    def test_missing_script_reported_not_raised(self, bench_dir):
        broken = BenchTarget(
            name="ghost", script="bench_ghost.py", baseline=STUB_TARGET.baseline
        )
        cycle = run_bench_cycle(targets=[broken], bench_dir=bench_dir)
        assert not cycle.ok
        assert "missing bench script" in cycle.results[0].error

    def test_crashing_script_reported_not_raised(self, bench_dir):
        (bench_dir / "bench_stub.py").write_text("raise SystemExit(3)\n")
        cycle = run_bench_cycle(targets=[STUB_TARGET], bench_dir=bench_dir)
        assert not cycle.ok
        assert "exited 3" in cycle.results[0].error

    def test_missing_bench_dir_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="does not exist"):
            run_bench_cycle(bench_dir=tmp_path / "nope")

    def test_custom_results_dir(self, bench_dir, tmp_path):
        results = tmp_path / "elsewhere"
        run_bench_cycle(
            targets=[STUB_TARGET], bench_dir=bench_dir, results_dir=results
        )
        assert TrajectoryStore(results / "perf_trajectory.jsonl").records()


class TestBenchJob:
    def test_bench_job_through_executor(self, bench_dir, tmp_path):
        state = ServiceState(tmp_path / "state")
        state.ensure_layout()
        events = []
        view = JobView(
            job_id="job-1",
            spec=JobSpec(
                kind="bench",
                params={
                    "targets": ["stub"],
                    "bench_dir": str(bench_dir),
                },
            ),
        )
        # "stub" is not a default target name, so resolution fails — the
        # job fails cleanly rather than crashing the worker.
        outcome = execute_job(view, state, events.append)
        assert outcome.state == "failed"
        assert "unknown bench target" in outcome.detail["error"]

        view = JobView(
            job_id="job-2",
            spec=JobSpec(kind="bench", params={"bench_dir": str(bench_dir)}),
        )
        # Default targets against the stub dir: scripts are absent, so the
        # cycle completes with per-target errors and the job is "failed".
        outcome = execute_job(view, state, events.append)
        assert outcome.state == "failed"
        assert all(not t["ok"] for t in outcome.detail["targets"])


class TestTrajectoryStore:
    def test_append_and_records_round_trip(self, tmp_path):
        store = TrajectoryStore(tmp_path / "results" / "trajectory.jsonl")
        cycle = BenchCycle(commit="abc1234", started=12.5)
        cycle.results.append(
            TargetResult(
                name="hotpath", ok=True, wall_clock_s={"clique8": 0.4}
            )
        )
        store.append(cycle)
        [record] = store.records()
        assert record == {
            "ts": 12.5,
            "commit": "abc1234",
            "target": "hotpath",
            "ok": True,
            "regressions": 0,
            "wall_clock_s": {"clique8": 0.4},
        }

    def test_damaged_lines_skipped(self, tmp_path):
        store = TrajectoryStore(tmp_path / "trajectory.jsonl")
        cycle = BenchCycle(commit="abc1234", started=1.0)
        cycle.results.append(TargetResult(name="hotpath", ok=True))
        store.append(cycle)
        with store.path.open("a") as handle:
            handle.write('{"crc": 1, "record"')  # torn mid-write
        store.append(cycle)
        assert len(store.records()) == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert TrajectoryStore(tmp_path / "absent.jsonl").records() == []


class TestCurrentCommit:
    def test_inside_repo(self):
        commit = current_commit(REPO_ROOT)
        assert commit != "unknown"
        assert len(commit) >= 7

    def test_outside_repo(self, tmp_path):
        assert current_commit(tmp_path) == "unknown"
