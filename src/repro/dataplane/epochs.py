"""Epoch-based data-plane evaluation.

Under the paper's parameters a packet's whole lifetime (TTL 128 × 2 ms =
256 ms) is short relative to how fast the forwarding state changes (message
processing alone is 100-500 ms), so the forwarding graph is quasi-static over
any single packet's flight.  That observation makes per-packet event
simulation unnecessary: between two FIB changes the graph is *constant*, so
every packet a given source emits in that epoch shares one fate.

:class:`EpochEvaluator` walks each (epoch × source) combination once and
multiplies by the number of packets the source emits in the epoch —
turning a 110-node × 500 s × 10 pkt/s workload from ~70 M hop events into a
few thousand graph walks.  The event-driven forwarder in
:mod:`repro.dataplane.trajectory` computes the same quantities exactly and is
cross-validated against this evaluator in the test suite and the ablation
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AnalysisError
from ..topology import DEFAULT_LINK_DELAY
from .fib import FibChangeLog, Prefix
from .packet import DEFAULT_TTL, PacketFate, WalkResult, walk
from .traffic import CbrSource


@dataclass
class LoopSighting:
    """Aggregate statistics for one distinct forwarding cycle."""

    cycle: Tuple[int, ...]
    packets_lost: int = 0
    first_seen: float = float("inf")
    last_seen: float = float("-inf")

    @property
    def size(self) -> int:
        """Number of nodes in the cycle."""
        return len(self.cycle)

    @property
    def observed_duration(self) -> float:
        """Span between first and last packet lost to this cycle."""
        if self.packets_lost == 0:
            return 0.0
        return self.last_seen - self.first_seen


@dataclass
class DataPlaneReport:
    """Packet-fate totals over an evaluation window (§4.2's metrics).

    ``first_exhaustion``/``last_exhaustion`` are the instants the TTL of the
    first/last looping packet hit zero; "Overall Looping Duration starts when
    the first TTL exhaustion occurs and ends when the last TTL exhaustion
    occurs".
    """

    window: Tuple[float, float]
    packets_sent: int = 0
    delivered: int = 0
    dropped_no_route: int = 0
    ttl_exhaustions: int = 0
    first_exhaustion: Optional[float] = None
    last_exhaustion: Optional[float] = None
    loops: Dict[Tuple[int, ...], LoopSighting] = field(default_factory=dict)
    per_source_exhaustions: Dict[int, int] = field(default_factory=dict)
    delivered_hops: Dict[int, int] = field(default_factory=dict)

    @property
    def looping_ratio(self) -> float:
        """TTL exhaustions over packets sent in the window (§4.2).

        "This metric can be considered as the probability that a packet sent
        during routing convergence encounters looping."
        """
        if self.packets_sent == 0:
            return 0.0
        return self.ttl_exhaustions / self.packets_sent

    @property
    def overall_looping_duration(self) -> float:
        """Last minus first TTL-exhaustion instant (0 when loop-free)."""
        if self.first_exhaustion is None or self.last_exhaustion is None:
            return 0.0
        return self.last_exhaustion - self.first_exhaustion

    @property
    def delivery_ratio(self) -> float:
        """Delivered packets over packets sent."""
        if self.packets_sent == 0:
            return 0.0
        return self.delivered / self.packets_sent

    @property
    def mean_delivered_hops(self) -> float:
        """Average AS-hop count of delivered packets (0 when none).

        During convergence packets take detours (including loops they later
        escape), so this rises above the steady-state shortest-path mean —
        the simulated analogue of the 25-1300 ms extra delay Hengartner et
        al. measured for loop-escaping packets.
        """
        if self.delivered == 0:
            return 0.0
        weighted = sum(hops * count for hops, count in self.delivered_hops.items())
        return weighted / self.delivered

    def max_delivered_hops(self) -> int:
        """Longest delivered trajectory (0 when nothing delivered)."""
        return max(self.delivered_hops, default=0)

    def record_delivery(self, hops: int, count: int = 1) -> None:
        """Account ``count`` delivered packets that took ``hops`` hops."""
        self.delivered += count
        self.delivered_hops[hops] = self.delivered_hops.get(hops, 0) + count

    def distinct_loops(self) -> List[LoopSighting]:
        """Observed loops, largest packet toll first."""
        return sorted(
            self.loops.values(), key=lambda s: (-s.packets_lost, s.cycle)
        )

    def _note_exhaustion(self, time: float) -> None:
        if self.first_exhaustion is None or time < self.first_exhaustion:
            self.first_exhaustion = time
        if self.last_exhaustion is None or time > self.last_exhaustion:
            self.last_exhaustion = time


class EpochEvaluator:
    """Computes a :class:`DataPlaneReport` from a FIB change log.

    Parameters
    ----------
    log:
        The run's :class:`~repro.dataplane.fib.FibChangeLog`.
    prefix:
        Destination prefix under study.
    sources:
        The CBR sources (typically one per non-destination AS).
    ttl:
        Initial TTL (the paper's 128).
    hop_delay:
        Per-hop forwarding latency used to timestamp TTL deaths; the
        paper's 2 ms link delay.  Only affects exhaustion timestamps (by at
        most ``ttl × hop_delay`` = 256 ms), not counts.
    """

    def __init__(
        self,
        log: FibChangeLog,
        prefix: Prefix,
        sources: List[CbrSource],
        ttl: int = DEFAULT_TTL,
        hop_delay: float = DEFAULT_LINK_DELAY,
    ) -> None:
        if not sources:
            raise AnalysisError("need at least one traffic source")
        self._log = log
        self._prefix = prefix
        self._sources = sources
        self._ttl = ttl
        self._hop_delay = hop_delay

    def evaluate(self, start: float, end: float) -> DataPlaneReport:
        """Evaluate packet fates for the window ``[start, end)``."""
        if end < start:
            raise AnalysisError(f"window end {end} before start {start}")
        report = DataPlaneReport(window=(start, end))
        for t0, t1, graph in self._log.epochs(self._prefix, start, end):
            walks: Dict[int, WalkResult] = {}
            for source in self._sources:
                count = source.count_in(t0, t1)
                if count == 0:
                    continue
                result = walks.get(source.node)
                if result is None:
                    result = walk(graph, source.node, self._ttl)
                    walks[source.node] = result
                self._accumulate(report, source, result, count, t0, t1)
        return report

    def _accumulate(
        self,
        report: DataPlaneReport,
        source: CbrSource,
        result: WalkResult,
        count: int,
        t0: float,
        t1: float,
    ) -> None:
        report.packets_sent += count
        if result.fate is PacketFate.DELIVERED:
            report.record_delivery(result.hops, count)
            return
        if result.fate is PacketFate.DROPPED_NO_ROUTE:
            report.dropped_no_route += count
            return

        # TTL exhaustion: every one of the source's packets in this epoch
        # dies ttl × hop_delay after its departure.
        report.ttl_exhaustions += count
        report.per_source_exhaustions[source.node] = (
            report.per_source_exhaustions.get(source.node, 0) + count
        )
        death_offset = self._ttl * self._hop_delay
        first_departure = source.departure_time(source.first_index_at_or_after(t0))
        last_departure = source.departure_time(
            source.first_index_at_or_after(t1) - 1
        )
        report._note_exhaustion(first_departure + death_offset)
        report._note_exhaustion(last_departure + death_offset)

        if result.loop is not None:
            sighting = report.loops.get(result.loop)
            if sighting is None:
                sighting = LoopSighting(cycle=result.loop)
                report.loops[result.loop] = sighting
            sighting.packets_lost += count
            sighting.first_seen = min(sighting.first_seen, first_departure + death_offset)
            sighting.last_seen = max(sighting.last_seen, last_departure + death_offset)
