"""A link-state router: LSA flooding plus Dijkstra/BFS shortest paths.

The §2 background protocol: "Hengartner et al. illustrated that transient
loops can form in link state protocols" and §6 adds "link state protocols
typically propagate updates fast to reduce the duration of inconsistency,
but transient loops can still form since delays are inevitable."  This
module makes both halves measurable with the library's loop toolkit: the
same topologies, failures, FIB logging, and loop timelines as the BGP
speaker, but with OSPF/IS-IS-style routing underneath.

Model (single area, unit link costs):

* every router originates an LSA listing its adjacencies, re-originating
  with a higher sequence number whenever they change;
* LSAs flood reliably: a router forwards any *fresher* LSA to all
  neighbors except the one it came from;
* routes are recomputed from the link-state database on every change,
  using BFS (unit costs) with the library's smallest-id tie-break and the
  standard two-way connectivity check (an edge counts only if both
  endpoints advertise it);
* destinations are prefixes statically mapped to their owner routers
  (the equivalent of the BGP experiments' single originated prefix).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..engine import RandomStreams, Scheduler
from ..errors import ProtocolError
from ..net import Node
from .lsa import LinkStateAd, make_lsa

FibListener = Callable[[float, int, str, Optional[int]], None]


class LinkStateSpeaker(Node):
    """One router in a link-state domain.

    Parameters
    ----------
    node_id, scheduler:
        Identity and the shared scheduler.
    streams:
        Named RNG streams (message processing delay).
    destinations:
        ``{prefix: owner_node}`` — domain-wide static knowledge of which
        router each destination sits behind.
    processing_delay:
        Uniform per-message CPU service bounds; link-state studies use the
        same model as BGP but the protocol sends far fewer messages.
    fib_listener:
        Optional next-hop change callback (same shape as the BGP speaker's).
    """

    def __init__(
        self,
        node_id: int,
        scheduler: Scheduler,
        streams: RandomStreams,
        destinations: Dict[str, int],
        processing_delay: tuple = (0.1, 0.5),
        fib_listener: Optional[FibListener] = None,
    ) -> None:
        rng = streams.stream(f"ls-processing:{node_id}")
        low, high = processing_delay

        def service_time() -> float:
            return rng.uniform(low, high)

        super().__init__(node_id, scheduler, service_time)
        self._destinations = dict(destinations)
        self._lsdb: Dict[int, LinkStateAd] = {}
        self._sequence = 0
        self.fib: Dict[str, Optional[int]] = {}
        self._fib_listener = fib_listener
        self.lsas_originated = 0
        self.lsas_flooded = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._originate()

    def _originate(self) -> None:
        """Issue a fresh LSA describing the current adjacencies."""
        self._sequence += 1
        lsa = make_lsa(self.node_id, self._sequence, self.neighbors)
        self.lsas_originated += 1
        self._install(lsa)
        self._flood(lsa, except_neighbor=None)

    # ------------------------------------------------------------------
    # Flooding
    # ------------------------------------------------------------------

    def handle_message(self, src: int, message) -> None:
        if not self.link_is_up(src):
            return
        if not isinstance(message, LinkStateAd):
            raise ProtocolError(f"unexpected message {message!r} from {src}")
        current = self._lsdb.get(message.origin)
        if current is not None and not message.newer_than(current):
            return  # duplicate or stale: flooding terminates here
        self._install(message)
        self._flood(message, except_neighbor=src)

    def _flood(self, lsa: LinkStateAd, except_neighbor: Optional[int]) -> None:
        for neighbor in self.neighbors:
            if neighbor != except_neighbor:
                self.send(neighbor, lsa)
                self.lsas_flooded += 1

    def _install(self, lsa: LinkStateAd) -> None:
        self._lsdb[lsa.origin] = lsa
        self._recompute()

    # ------------------------------------------------------------------
    # Adjacency changes
    # ------------------------------------------------------------------

    def on_link_down(self, neighbor: int) -> None:
        """Interface down: advertise the new adjacency set immediately."""
        self._originate()

    def on_link_up(self, neighbor: int) -> None:
        """Interface up: re-advertise, and sync our database to the peer."""
        self._originate()
        for lsa in sorted(self._lsdb.values(), key=lambda l: l.origin):
            self.send(neighbor, lsa)
            self.lsas_flooded += 1

    # ------------------------------------------------------------------
    # Shortest paths
    # ------------------------------------------------------------------

    def lsdb_edges(self) -> Dict[int, List[int]]:
        """The two-way-checked adjacency view of the LSDB."""
        adjacency: Dict[int, List[int]] = {}
        for origin, lsa in self._lsdb.items():
            for neighbor in lsa.neighbors:
                other = self._lsdb.get(neighbor)
                if other is not None and origin in other.neighbors:
                    adjacency.setdefault(origin, []).append(neighbor)
        for neighbors in adjacency.values():
            neighbors.sort()
        return adjacency

    def _recompute(self) -> None:
        """BFS from self over the LSDB; update per-prefix next hops."""
        adjacency = self.lsdb_edges()
        distance: Dict[int, int] = {self.node_id: 0}
        first_hop: Dict[int, Optional[int]] = {self.node_id: None}
        frontier = [self.node_id]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for neighbor in adjacency.get(node, []):
                    candidate_hop = (
                        neighbor if node == self.node_id else first_hop[node]
                    )
                    if neighbor not in distance:
                        distance[neighbor] = distance[node] + 1
                        first_hop[neighbor] = candidate_hop
                        next_frontier.append(neighbor)
                    elif distance[neighbor] == distance[node] + 1:
                        # Equal-cost tie: keep the smallest first hop.
                        incumbent = first_hop[neighbor]
                        if (
                            incumbent is not None
                            and candidate_hop is not None
                            and candidate_hop < incumbent
                        ):
                            first_hop[neighbor] = candidate_hop
            frontier = next_frontier

        for prefix, owner in self._destinations.items():
            if owner == self.node_id:
                next_hop: Optional[int] = self.node_id
            elif owner in distance:
                next_hop = first_hop[owner]
            else:
                next_hop = None
            self._set_fib(prefix, next_hop)

    def _set_fib(self, prefix: str, next_hop: Optional[int]) -> None:
        had = prefix in self.fib
        if had and self.fib[prefix] == next_hop:
            return
        if not had and next_hop is None:
            return
        self.fib[prefix] = next_hop
        if self._fib_listener is not None:
            self._fib_listener(self.scheduler.now, self.node_id, prefix, next_hop)

    def next_hop(self, prefix: str) -> Optional[int]:
        """Current forwarding next hop (own id = deliver locally)."""
        return self.fib.get(prefix)
