"""Shared machinery for the per-figure drivers.

Every figure in §4-§5 is one of two shapes:

* **metric sweep** — x-axis sweep of one scenario family, several metrics
  plotted (Figures 4-7): :func:`metric_sweep_figure`;
* **variant comparison** — the same sweep repeated for each of the five
  protocol variants, one metric plotted (Figures 8-9):
  :func:`variant_comparison_series`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ...bgp import BgpConfig, variant
from ..config import RunSettings
from ..report import FigureData
from ..resilience import ResiliencePolicy
from ..spec import constant_config, factory_ref, mrai_config
from ..sweep import ScenarioFactory, SweepPoint, series, sweep, xs_of

#: Metric label → LoopStudyResult.summary_row() key, shared across figures.
#: The traffic_* keys exist only on runs with ``settings.traffic_matrix``
#: (multi-prefix workloads); requesting them from a single-prefix sweep is
#: a KeyError, by design.
METRIC_KEYS = {
    "looping_duration": "looping_duration",
    "convergence_time": "convergence_time",
    "ttl_exhaustions": "ttl_exhaustions",
    "looping_ratio": "looping_ratio",
    "traffic_looped_fraction": "traffic_looped_fraction",
    "traffic_blackholed_fraction": "traffic_blackholed_fraction",
    "traffic_delivered_fraction": "traffic_delivered_fraction",
}


def aggregate_telemetry(points: Sequence[SweepPoint]):
    """One sweep-wide :class:`~repro.telemetry.registry.MetricsSnapshot`
    combining every point's per-trial snapshots."""
    from ...telemetry import MetricsSnapshot

    return MetricsSnapshot.aggregate([point.telemetry() for point in points])


def metric_sweep_figure(
    figure_id: str,
    title: str,
    x_label: str,
    xs: Sequence[float],
    make_scenario: ScenarioFactory,
    metrics: Sequence[str],
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    config: Optional[BgpConfig] = None,
    mrai_is_x: bool = False,
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> Tuple[FigureData, List[SweepPoint]]:
    """Run one sweep and package the requested metric series as a figure.

    ``mrai_is_x`` makes the x value the MRAI setting (Figures 5 and 7);
    otherwise the MRAI is fixed at ``mrai`` and x parameterizes the scenario
    (topology size, Figures 4 and 6).  ``jobs`` fans trials out to worker
    processes (see :func:`~repro.experiments.sweep.sweep`); the config
    factories here are :class:`~repro.experiments.spec.FactoryRef`\\ s, so
    any driver whose scenario factory is module-level parallelizes for free.
    ``policy`` adds resilient execution (worker supervision, per-trial
    timeouts, retry with backoff) for long parallel figure runs.
    """
    base = config or BgpConfig.standard(mrai)
    if mrai_is_x:
        make_config = factory_ref(mrai_config, base=base)
    else:
        make_config = factory_ref(constant_config, config=base)

    points = sweep(
        xs,
        make_scenario,
        make_config,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    figure = FigureData(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        xs=xs_of(points),
        series={name: series(points, METRIC_KEYS[name]) for name in metrics},
        telemetry=aggregate_telemetry(points) if settings.telemetry else None,
    )
    return figure, points


def variant_comparison_series(
    xs: Sequence[float],
    make_scenario: ScenarioFactory,
    metric: str,
    variant_names: Sequence[str],
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> Dict[str, List[float]]:
    """One metric's sweep series per protocol variant.

    Returns ``{variant_name: [metric at each x]}`` with every variant run on
    identical scenarios and seeds, making the comparison paired.  ``jobs``
    parallelizes the trials within each variant's sweep; ``policy`` runs
    them resiliently (see :func:`~repro.experiments.sweep.sweep`).
    """
    result: Dict[str, List[float]] = {}
    for name in variant_names:
        config = variant(name, mrai=mrai)
        points = sweep(
            xs,
            make_scenario,
            factory_ref(constant_config, config=config),
            seeds=seeds,
            settings=settings,
            jobs=jobs,
            policy=policy,
        )
        result[name] = series(points, METRIC_KEYS[metric])
    return result


def normalize_to(
    baseline: Sequence[float], others: Dict[str, List[float]]
) -> Dict[str, List[float]]:
    """Normalize each series pointwise by ``baseline`` (paper Figs 8a/9a).

    A zero baseline point normalizes to 1.0 when the other series is also
    zero there (both loop-free — parity), else to ``inf``.
    """
    normalized: Dict[str, List[float]] = {}
    for name, values in others.items():
        row = []
        for base_value, value in zip(baseline, values):
            if base_value == 0:
                row.append(1.0 if value == 0 else float("inf"))
            else:
                row.append(value / base_value)
        normalized[name] = row
    return normalized
