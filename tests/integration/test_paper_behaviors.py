"""Integration tests asserting the paper's qualitative findings at small
scale (the full-size reproductions live in benchmarks/)."""

import pytest

from repro.bgp import BgpConfig, variant
from repro.core import check_linear_in_mrai, check_ratio_constant
from repro.experiments import (
    RunSettings,
    run_experiment,
    tdown_clique,
    tdown_internet,
    tlong_bclique,
)
from repro.util import linear_fit, mean

SETTINGS = RunSettings(failure_guard=0.5)
PROC = (0.05, 0.15)  # scaled-down processing delay for fast tests


def tdown_metrics(n, mrai, seeds=(0, 1)):
    results = [
        run_experiment(
            tdown_clique(n),
            BgpConfig(mrai=mrai, processing_delay=PROC),
            settings=SETTINGS,
            seed=s,
        ).result
        for s in seeds
    ]
    return results


class TestObservation1:
    """Looping duration ~ convergence time, both linear in MRAI."""

    def test_looping_spans_most_of_tdown_convergence(self):
        for result in tdown_metrics(6, mrai=2.0):
            assert result.overall_looping_duration > 0.5 * result.convergence_time

    def test_looping_never_exceeds_convergence(self):
        # Slack of 0.5 s covers the TTL-death flight offset (ttl × hop delay)
        # added to exhaustion timestamps.
        for result in tdown_metrics(6, mrai=2.0):
            assert result.overall_looping_duration <= result.convergence_time + 0.5

    def test_convergence_time_linear_in_mrai(self):
        mrais = [1.0, 2.0, 4.0, 6.0]
        conv = [
            mean([r.convergence_time for r in tdown_metrics(6, m)]) for m in mrais
        ]
        check = check_linear_in_mrai(mrais, conv)
        assert check.holds, check.detail

    def test_looping_duration_linear_in_mrai(self):
        mrais = [1.0, 2.0, 4.0, 6.0]
        dur = [
            mean([r.overall_looping_duration for r in tdown_metrics(6, m)])
            for m in mrais
        ]
        check = check_linear_in_mrai(mrais, dur)
        assert check.holds, check.detail


class TestObservation2:
    """TTL exhaustions linear in MRAI; looping ratio roughly constant."""

    def test_exhaustions_grow_with_mrai(self):
        mrais = [1.0, 2.0, 4.0, 6.0]
        exh = [
            mean([float(r.ttl_exhaustions) for r in tdown_metrics(6, m)])
            for m in mrais
        ]
        fit = linear_fit(mrais, exh)
        assert fit.slope > 0
        assert fit.r_squared >= 0.85, (exh, fit)

    def test_looping_ratio_stays_in_band(self):
        mrais = [1.0, 2.0, 4.0, 6.0]
        ratios = [
            mean([r.looping_ratio for r in tdown_metrics(6, m)]) for m in mrais
        ]
        check = check_ratio_constant(ratios, max_cv=0.35)
        assert check.holds, check.detail


class TestObservation3:
    """Assertion & Ghost Flushing effective; SSLD never regresses."""

    def run_variant(self, name, n=6):
        config = variant(name, mrai=2.0)
        config = BgpConfig(
            mrai=2.0,
            processing_delay=PROC,
            ssld=config.ssld,
            wrate=config.wrate,
            assertion=config.assertion,
            ghost_flushing=config.ghost_flushing,
        )
        results = [
            run_experiment(tdown_clique(n), config, settings=SETTINGS, seed=s).result
            for s in (0, 1)
        ]
        return mean([float(r.ttl_exhaustions) for r in results]), mean(
            [r.convergence_time for r in results]
        )

    def test_assertion_and_ghost_flushing_cut_looping(self):
        base_exh, base_conv = self.run_variant("standard")
        for name in ("assertion", "ghost-flushing"):
            exh, conv = self.run_variant(name)
            assert exh < 0.5 * base_exh, (name, exh, base_exh)
            assert conv < base_conv, (name, conv, base_conv)

    def test_ssld_does_not_regress(self):
        base_exh, base_conv = self.run_variant("standard")
        exh, conv = self.run_variant("ssld")
        assert exh <= base_exh * 1.05
        assert conv <= base_conv * 1.05


class TestTlongGap:
    """Figure 4b: Tlong looping duration trails convergence by ~ one MRAI
    round (the final update is MRAI-delayed but triggers no change)."""

    def test_gap_positive_and_bounded(self):
        mrai = 2.0
        gaps = []
        for seed in (0, 1, 2):
            result = run_experiment(
                tlong_bclique(5),
                BgpConfig(mrai=mrai, processing_delay=PROC),
                settings=SETTINGS,
                seed=seed,
            ).result
            gaps.append(result.looping_gap)
        assert mean(gaps) > 0
        assert mean(gaps) < 8 * mrai


class TestInternetTdown:
    def test_high_looping_ratio_on_internet_graph(self):
        # MRAI must dominate the processing delay for the paper's high
        # looping ratios to appear (at the paper's 30 s MRAI the measured
        # ratio reaches ~0.86; see EXPERIMENTS.md).  5 s keeps the test fast
        # while preserving the dominance.
        result = run_experiment(
            tdown_internet(29, seed=0),
            BgpConfig(mrai=5.0, processing_delay=PROC),
            settings=SETTINGS,
            seed=0,
        ).result
        assert result.looping_ratio > 0.3
        assert result.overall_looping_duration > 0.5 * result.convergence_time
