"""End-to-end chaos tests: SIGKILL + hang under supervision, and
subprocess drivers killed (worker and driver) mid-sweep.

The first class is the PR's acceptance scenario: a sweep that loses one
worker to ``kill -9`` and one trial to a hang must still return complete
SweepPoints whose digests are bit-identical to an undisturbed ``jobs=1``
sweep.  The subprocess classes exercise the same guarantees from outside
the process boundary, the way a batch host actually fails.
"""

import json
import os
import signal
import subprocess
import sys
import time
from functools import partial
from pathlib import Path

import pytest

import chaos_helpers
from repro.bgp import BgpConfig
from repro.experiments import (
    ResiliencePolicy,
    RunSettings,
    SweepJournal,
    clique_tdown_trial,
    constant_config,
    factory_ref,
    sweep,
)

FAST = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(failure_guard=0.5)
MAKE_CONFIG = factory_ref(constant_config, config=FAST)

SRC = str(Path(__file__).resolve().parents[2] / "src")
HELPERS = str(Path(__file__).resolve().parent)


def digests(points):
    return [run.fingerprint.digest for point in points for run in point.runs]


class TestChaoticDigestEquivalence:
    """The acceptance criterion, verbatim from the issue."""

    def test_sigkill_and_hang_match_undisturbed_jobs1(self, tmp_path):
        xs = [3, 4]
        seeds = (0, 1)
        baseline = sweep(
            xs,
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=seeds,
            settings=SETTINGS,
            digests=True,
        )
        reports = []
        chaotic = sweep(
            xs,
            partial(
                chaos_helpers.chaotic_tdown,
                marker_dir=str(tmp_path),
                kill_key=(3, 0),
                hang_key=(4, 1),
            ),
            MAKE_CONFIG,
            seeds=seeds,
            settings=SETTINGS,
            jobs=2,
            digests=True,
            policy=ResiliencePolicy(
                max_retries=2, trial_timeout=1.5, backoff_base=0.01
            ),
            on_report=reports.append,
        )
        assert all(point.succeeded == 2 for point in chaotic)
        assert all(point.failed == 0 for point in chaotic)
        assert digests(chaotic) == digests(baseline)

        attempts = {
            (point.x, run.seed): run.attempt
            for point in chaotic
            for run in point.runs
        }
        assert attempts[(3, 0)] == 2  # worker was SIGKILLed once
        assert attempts[(4, 1)] == 2  # trial hung past the watchdog once
        assert attempts[(3, 1)] == 1
        assert attempts[(4, 0)] == 1

        [report] = reports
        assert report.worker_deaths >= 1
        assert report.timeouts >= 1
        assert report.retries >= 2
        assert report.exhausted == 0


DRIVER = """\
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {helpers!r})

from functools import partial

import chaos_helpers
from repro.bgp import BgpConfig
from repro.experiments import (
    ResiliencePolicy,
    RunSettings,
    checkpointed_sweep,
    constant_config,
    factory_ref,
)

summaries = checkpointed_sweep(
    [3, 4],
    partial(chaos_helpers.slow_tdown, delay_s={delay!r}),
    factory_ref(
        constant_config,
        config=BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05)),
    ),
    journal={journal!r},
    seeds=(0, 1),
    settings=RunSettings(failure_guard=0.5),
    jobs=2,
    policy=ResiliencePolicy(
        max_retries=3, backoff_base=0.01, trial_timeout=60.0
    ),
)
assert all(s.succeeded == 2 for s in summaries), summaries
print("DRIVER-OK")
"""


def write_driver(tmp_path, journal, delay=0.8):
    script = tmp_path / "driver.py"
    script.write_text(
        DRIVER.format(
            src=SRC, helpers=HELPERS, journal=str(journal), delay=delay
        ),
        encoding="utf-8",
    )
    return script


def child_pids_of(pid):
    """Direct children of ``pid``, via /proc (Linux CI is a given here)."""
    children = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        # field 4 (1-based) after the parenthesised comm is the ppid
        after_comm = stat.rsplit(")", 1)[-1].split()
        if len(after_comm) >= 2 and int(after_comm[1]) == pid:
            children.append(int(entry.name))
    return children


@pytest.mark.skipif(sys.platform != "linux", reason="relies on /proc")
class TestSubprocessChaos:
    def wait_for_children(self, pid, deadline_s=15.0):
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            children = child_pids_of(pid)
            if children:
                return children
            time.sleep(0.05)
        return []

    def test_worker_sigkill_from_outside_still_completes(self, tmp_path):
        """Resume-after-SIGKILL-of-a-worker: an external ``kill -9`` on a
        worker process must be absorbed by supervision — the driver still
        exits 0 with a complete journal."""
        journal = tmp_path / "sweep.jsonl"
        script = write_driver(tmp_path, journal, delay=0.8)
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            workers = self.wait_for_children(proc.pid)
            assert workers, "driver never spawned worker processes"
            os.kill(workers[0], signal.SIGKILL)
            output, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 0, output
        assert "DRIVER-OK" in output
        records, recovery = SweepJournal(journal).load()
        assert set(records) == {(3, 0), (3, 1), (4, 0), (4, 1)}
        assert all(record.ok for record in records.values())
        assert recovery.clean

    def test_driver_sigkill_then_resume_preserves_journal(self, tmp_path):
        """``kill -9`` the *driver* mid-sweep; the rerun must trust every
        journaled record and only execute the missing trials."""
        journal = tmp_path / "sweep.jsonl"
        script = write_driver(tmp_path, journal, delay=0.6)
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Let at least one trial land in the journal, then murder it.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if journal.exists() and journal.read_text(
                    encoding="utf-8"
                ).count("\n"):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("journal never received a record")
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        for worker in child_pids_of(proc.pid):  # no orphan leakage check
            os.kill(worker, signal.SIGKILL)

        partial_records, _ = SweepJournal(journal).load()
        assert partial_records, "expected journaled trials before the kill"
        before = {
            key: record.metrics for key, record in partial_records.items()
        }

        rerun = subprocess.run(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            timeout=120,
        )
        assert rerun.returncode == 0, rerun.stdout
        records, recovery = SweepJournal(journal).load()
        assert set(records) == {(3, 0), (3, 1), (4, 0), (4, 1)}
        assert recovery.clean
        for key, metrics in before.items():
            assert records[key].metrics == metrics  # journaled work kept
