#!/usr/bin/env python
"""The paper's Figure 1, step by step: how a transient BGP loop forms.

Builds the exact 7-node topology of Figure 1, converges it, fails link
[4 0], and narrates what happens: nodes 5 and 6 fail over to each other's
stale paths, packets loop between them, and the loop resolves when the
path-based poison reverse information propagates.
"""

from repro import BgpConfig, Scheduler
from repro.bgp import BgpSpeaker
from repro.core import loop_timeline
from repro.dataplane import FibChangeLog
from repro.engine import RandomStreams
from repro.net import Network
from repro.topology import Topology

PREFIX = "dest"


def figure1_topology() -> Topology:
    return Topology.from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 6), (4, 5), (4, 6), (5, 6), (0, 4)],
        name="figure-1",
    )


def show_paths(network, label: str) -> None:
    print(f"\n  {label}")
    for nid in (4, 5, 6):
        path = network.node(nid).full_path(PREFIX)
        shown = repr(path) if path is not None else "(no route)"
        print(f"    node {nid}: best path {shown}")


def main() -> None:
    scheduler = Scheduler()
    streams = RandomStreams(7)
    fib_log = FibChangeLog()
    config = BgpConfig.standard(mrai=30.0)
    network = Network(
        figure1_topology(),
        scheduler,
        lambda nid, sch: BgpSpeaker(
            nid, sch, config=config, streams=streams, fib_listener=fib_log.record
        ),
    )

    print("Figure 1 topology: destination behind node 0; node 4 holds the")
    print("direct link; 5 and 6 sit behind 4 and peer with each other;")
    print("node 6 also has the long backup chain 6-3-2-1-0.")

    network.node(0).originate(PREFIX)
    network.start()
    scheduler.run(max_events=100_000)
    show_paths(network, "After initial convergence (Figure 1a):")

    failure_time = scheduler.now + 1.0
    network.schedule_link_failure(0, 4, at=failure_time)
    scheduler.run(max_events=100_000)
    show_paths(network, "After link [4 0] fails and BGP re-converges (Figure 1c):")

    print("\n  Transient loops that existed in between (Figure 1b):")
    for interval in loop_timeline(fib_log, PREFIX, failure_time, scheduler.now):
        members = " <-> ".join(str(n) for n in interval.cycle)
        print(
            f"    loop [{members}] formed at t={interval.start:.2f}s, "
            f"lasted {interval.duration:.2f}s"
        )
    print(
        "\n  The 5 <-> 6 loop is the paper's example: both nodes failed over"
        "\n  to stale paths through each other, and the loop resolved only"
        "\n  when their (MRAI-delayed) announcements crossed and the"
        "\n  path-based poison reverse discarded the inconsistent routes."
    )


if __name__ == "__main__":
    main()
